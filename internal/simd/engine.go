// Execution engine: the pluggable strategy that carries out the
// per-PE work of a Machine — the transmit/deliver phases of a unit
// route, the per-PE sweeps of Set/SetMasked/Apply, and the delivery
// walk of compiled plan steps (see plan.go).
//
// Executors provided:
//
//   - Sequential(): the reference implementation, one pass over the
//     PEs in ascending order. This is the semantic ground truth.
//   - Parallel(workers): a sharded implementation that splits the PE
//     range into contiguous blocks, resolves every PE's selected
//     port and destination concurrently on the machine's persistent
//     worker pool (started lazily, reused across routes, released by
//     Close), and then merges the per-shard results
//     deterministically: the conflict scan walks senders in
//     ascending PE order exactly like the sequential executor, so
//     Stats, PortUses, register contents and receive-conflict
//     diagnostics are bit-identical to Sequential() for any program
//     whose port/mask/assignment functions are pure (no shared
//     mutable state, no dependence on evaluation order). Every port
//     function in this repository is pure; user programs that close
//     over an *rand.Rand or other order-sensitive state must use
//     Sequential().
//   - ParallelSpawn(workers): the historical variant that spawns
//     fresh goroutines for every phase of every route instead of
//     using the pool. Semantically identical to Parallel; kept as
//     the measured baseline of the pool (BENCH_plans.json).
//
// The parallel executor pays off when port resolution is expensive
// (the star machine's Lemma-2 role tests cost O(n²) per PE) or the
// machine is large (S_9 has 362,880 PEs); the merge phase is a cheap
// linear scan either way.
package simd

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
)

// Executor carries out the per-PE work of a Machine. Implementations
// are stateless configuration values and may be shared across
// machines; per-machine scratch (including the worker pool) lives in
// the Machine itself.
type Executor interface {
	// Name identifies the executor in diagnostics and bench records.
	Name() string

	// route executes the transmit+deliver phases of one unit route,
	// updating m.stats.Sent, m.portUses and the inbox/touched
	// scratch, and returns the number of receive conflicts.
	route(m *Machine, sr, dr []int64, portOf PortFunc) int

	// apply runs fn(pe) for every pe in [0, m.Size()).
	apply(m *Machine, fn func(pe int))

	// replayStep delivers one compiled plan step: dr[to] := sr[from]
	// for every pair, reads-before-writes when sr and dr alias.
	// Counter updates belong to Machine.execStep, not here.
	replayStep(m *Machine, st *planStep, sr, dr []int64)
}

// Option configures a Machine at construction time.
type Option func(*Machine)

// WithExecutor selects the machine's execution engine. The default
// is Sequential().
func WithExecutor(e Executor) Option {
	return func(m *Machine) {
		if e != nil {
			m.exec = e
		}
	}
}

// Sequential returns the reference executor: one pass over the PEs
// in ascending order, no goroutines.
func Sequential() Executor { return seqExecutor{} }

// Parallel returns the sharded executor running the given number of
// workers per unit route on the machine's persistent pool; workers
// <= 0 selects runtime.GOMAXPROCS(0). Results are bit-identical to
// Sequential() for pure per-PE functions (see the package comment
// above). Call Machine.Close when done to release the pool promptly.
func Parallel(workers int) Executor { return parExecutor{workers: workers} }

// ParallelSpawn returns the sharded executor in its historical
// spawn-per-route mode: fresh goroutines for every phase of every
// route, no pool. Bit-identical to Parallel(workers); it exists as
// the measured baseline the persistent pool is benchmarked against.
func ParallelSpawn(workers int) Executor { return parExecutor{workers: workers, spawn: true} }

// --- sequential ---------------------------------------------------

type seqExecutor struct{}

func (seqExecutor) Name() string { return "sequential" }

func (seqExecutor) route(m *Machine, sr, dr []int64, portOf PortFunc) int {
	n := m.topo.Size()
	m.clearTouched()
	conflicts := 0
	for pe := 0; pe < n; pe++ {
		p := portOf(pe)
		if p < 0 {
			continue
		}
		to := m.topo.Neighbor(pe, p)
		if to < 0 {
			panic(fmt.Sprintf("simd: PE %d transmits through unconnected port %d", pe, p))
		}
		m.stats.Sent++
		m.portUses[p]++
		if m.touched[to] {
			conflicts++
			continue // first message wins; conflict recorded
		}
		m.touched[to] = true
		m.touchedDirty = append(m.touchedDirty, int32(to))
		m.inbox[to] = sr[pe]
	}
	for _, to := range m.touchedDirty {
		dr[to] = m.inbox[to]
	}
	m.resetTouched()
	return conflicts
}

func (seqExecutor) apply(m *Machine, fn func(pe int)) {
	n := m.topo.Size()
	for pe := 0; pe < n; pe++ {
		fn(pe)
	}
}

func (seqExecutor) replayStep(m *Machine, st *planStep, sr, dr []int64) {
	tos, froms := st.tos, st.froms
	if aliased(sr, dr) {
		// Reads precede writes: stage through the inbox, indexed by
		// pair position (pairs never outnumber PEs).
		inbox := m.inbox
		for i, f := range froms {
			inbox[i] = sr[f]
		}
		for i, t := range tos {
			dr[t] = inbox[i]
		}
		return
	}
	if st.segs != nil {
		// Run-length copy path: each seg is one memmove, no
		// per-element bounds checks.
		for _, sg := range st.segs {
			copy(dr[sg.to:sg.to+sg.n], sr[sg.from:sg.from+sg.n])
		}
		return
	}
	// Gather loop over the destination-sorted permutation table: the
	// writes stream through dr in address order.
	for i, f := range froms {
		dr[tos[i]] = sr[f]
	}
}

// aliased reports whether two registers share backing storage.
func aliased(a, b []int64) bool {
	return len(a) > 0 && len(b) > 0 && &a[0] == &b[0]
}

// --- parallel -----------------------------------------------------

type parExecutor struct {
	workers int
	spawn   bool // spawn-per-route baseline instead of the pool
}

func (e parExecutor) Name() string {
	name := "parallel"
	if e.spawn {
		name = "parallel-spawn"
	}
	if e.workers <= 0 {
		return name
	}
	return fmt.Sprintf("%s-%d", name, e.workers)
}

func (e parExecutor) workerCount(n int) int {
	w := e.workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// dispatch runs fn(0) … fn(w-1) concurrently: on the machine's
// persistent pool, or on freshly spawned goroutines in spawn mode.
// fn must not let panics escape (route/apply shards recover into
// parScratch.panics; replay shards cannot panic).
func (e parExecutor) dispatch(m *Machine, w int, fn func(sh int)) {
	if !e.spawn {
		m.poolFor(w).run(w, fn)
		return
	}
	var wg sync.WaitGroup
	for sh := 0; sh < w; sh++ {
		wg.Add(1)
		go func(sh int) {
			defer wg.Done()
			fn(sh)
		}(sh)
	}
	wg.Wait()
}

// parScratch is the per-machine buffer set of the parallel executor,
// allocated lazily on the first parallel route/apply.
type parScratch struct {
	ports   []int32   // resolved port per sender; -1 = silent
	dests   []int32   // resolved destination per sender
	sent    []int64   // per-shard transmission count
	uses    [][]int64 // per-shard per-port use count
	badPE   []int     // per-shard lowest PE with an unconnected port
	badPort []int
	panics  []any // per-shard recovered panic value
	// Destination-bucketed dirty lists for phase 3: bucket b holds the
	// winners whose destination falls in [b<<bucketShift,
	// (b+1)<<bucketShift). Bucket width is a multiple of 64 entries, so
	// it covers whole cache lines of both dr (8 int64/line) and the
	// touched bool array (64 bools/line); a phase-3 shard delivering a
	// contiguous bucket range therefore never shares a line with its
	// neighbors. Bucket capacity is retained across routes (truncated
	// to [:0] each route), so steady-state routes allocate nothing.
	buckets     [][]int32
	bucketShift uint
}

func (m *Machine) parScratchFor(w int) *parScratch {
	n := m.topo.Size()
	s := m.par
	if s == nil || len(s.sent) < w {
		// Bucket width: the smallest 64-entry multiple that keeps the
		// bucket count within ~4 per worker (power of two, so phase 2
		// locates a winner's bucket with a shift, not a division).
		shift := uint(6)
		for (n >> shift) > 4*w {
			shift++
		}
		nb := (n + (1 << shift) - 1) >> shift
		s = &parScratch{
			ports:       make([]int32, n),
			dests:       make([]int32, n),
			sent:        make([]int64, w),
			uses:        make([][]int64, w),
			badPE:       make([]int, w),
			badPort:     make([]int, w),
			panics:      make([]any, w),
			buckets:     make([][]int32, nb),
			bucketShift: shift,
		}
		for i := range s.uses {
			s.uses[i] = make([]int64, m.topo.Ports())
		}
		m.par = s
	}
	return s
}

// shardRange returns the contiguous block of shard sh out of w.
func shardRange(n, w, sh int) (lo, hi int) {
	return sh * n / w, (sh + 1) * n / w
}

// rethrow re-raises the lowest-shard worker panic, if any, on the
// caller's goroutine so route/apply panics surface like sequential
// execution instead of crashing the process.
func (s *parScratch) rethrow(w int) {
	for sh := 0; sh < w; sh++ {
		if r := s.panics[sh]; r != nil {
			s.panics[sh] = nil
			panic(r)
		}
	}
}

func (e parExecutor) route(m *Machine, sr, dr []int64, portOf PortFunc) int {
	n := m.topo.Size()
	w := e.workerCount(n)
	if w == 1 {
		return seqExecutor{}.route(m, sr, dr, portOf)
	}
	s := m.parScratchFor(w)
	topo := m.topo

	// Phase 1 (parallel): each shard resolves its senders' ports and
	// destinations, accumulating shard-local counters. The touched
	// buffer is normally already clear (the previous route reset
	// exactly the entries it dirtied); only a route that panicked
	// mid-flight forces the sharded full clear.
	needClear := !m.touchedClean
	m.touchedDirty = m.touchedDirty[:0]
	m.touchedClean = false
	e.dispatch(m, w, func(sh int) {
		defer func() { s.panics[sh] = recover() }()
		lo, hi := shardRange(n, w, sh)
		if needClear {
			for pe := lo; pe < hi; pe++ {
				m.touched[pe] = false
			}
		}
		sent := int64(0)
		// Clear this shard's counters here, not in the merge: a
		// panicking route never reaches the merge, and stale counts
		// would corrupt the next route's PortUses if the caller
		// recovers.
		uses := s.uses[sh]
		for p := range uses {
			uses[p] = 0
		}
		bad, badPort := -1, 0
		for pe := lo; pe < hi; pe++ {
			p := portOf(pe)
			s.ports[pe] = int32(p)
			if p < 0 {
				continue
			}
			to := topo.Neighbor(pe, p)
			if to < 0 {
				if bad < 0 {
					bad, badPort = pe, p
				}
				s.ports[pe] = -1
				continue
			}
			s.dests[pe] = int32(to)
			sent++
			uses[p]++
		}
		s.sent[sh] = sent
		s.badPE[sh], s.badPort[sh] = bad, badPort
	})
	s.rethrow(w)
	for sh := 0; sh < w; sh++ {
		if s.badPE[sh] >= 0 {
			panic(fmt.Sprintf("simd: PE %d transmits through unconnected port %d",
				s.badPE[sh], s.badPort[sh]))
		}
	}

	// Merge counters in shard order (sums are order-independent, so
	// this matches the sequential totals exactly).
	for sh := 0; sh < w; sh++ {
		m.stats.Sent += s.sent[sh]
		uses := s.uses[sh]
		for p := range uses {
			m.portUses[p] += uses[p]
		}
	}

	// Phase 2 (sequential): conflict scan over senders in ascending
	// PE order — the same order the sequential executor uses, so the
	// first-message-wins outcome and the conflict count are
	// bit-identical. Winners land in destination-range buckets (the
	// sharded dirty list) instead of one flat list, so phase 3 can hand
	// each shard a contiguous, cache-line-aligned slice of the
	// destination space.
	for b := range s.buckets {
		s.buckets[b] = s.buckets[b][:0]
	}
	conflicts, nd := 0, 0
	shift := s.bucketShift
	for pe := 0; pe < n; pe++ {
		if s.ports[pe] < 0 {
			continue
		}
		to := int(s.dests[pe])
		if m.touched[to] {
			conflicts++
			continue
		}
		m.touched[to] = true
		b := to >> shift
		s.buckets[b] = append(s.buckets[b], int32(to))
		m.inbox[to] = sr[pe]
		nd++
	}

	// Phase 3 (parallel): deliver to the dirtied destinations only,
	// each shard draining a contiguous bucket range (disjoint aligned
	// destination ranges — no false sharing on dr or touched), clearing
	// the touched marks in the same pass.
	nb := len(s.buckets)
	if nd < parDeliverMin {
		for _, bucket := range s.buckets {
			for _, to := range bucket {
				dr[to] = m.inbox[to]
				m.touched[to] = false
			}
		}
	} else {
		e.dispatch(m, w, func(sh int) {
			defer func() { s.panics[sh] = recover() }()
			for b := sh * nb / w; b < (sh+1)*nb/w; b++ {
				for _, to := range s.buckets[b] {
					dr[to] = m.inbox[to]
					m.touched[to] = false
				}
			}
		})
		s.rethrow(w)
	}
	m.touchedClean = true
	return conflicts
}

func (e parExecutor) apply(m *Machine, fn func(pe int)) {
	n := m.topo.Size()
	w := e.workerCount(n)
	if w == 1 {
		seqExecutor{}.apply(m, fn)
		return
	}
	s := m.parScratchFor(w)
	e.dispatch(m, w, func(sh int) {
		defer func() { s.panics[sh] = recover() }()
		lo, hi := shardRange(n, w, sh)
		for pe := lo; pe < hi; pe++ {
			fn(pe)
		}
	})
	s.rethrow(w)
}

// parDeliverMin and parReplayMin bound the work below which sharding
// a delivery walk costs more than it saves.
const (
	parDeliverMin = 2048
	parReplayMin  = 2048
)

// alignPairBound advances a pair-index bound until its destination no
// longer shares a cache line with its predecessor's. tos is sorted
// ascending with distinct entries, so the loop advances at most
// cacheLineWords-1 positions; the result is monotone in i, keeping
// shard ranges well-ordered (possibly empty).
func alignPairBound(tos []int32, i int) int {
	for i > 0 && i < len(tos) && tos[i]/cacheLineWords == tos[i-1]/cacheLineWords {
		i++
	}
	return i
}

// replayShardBounds returns shard sh's pair range with both ends
// aligned on destination cache-line boundaries: no two shards ever
// write the same line of dr.
func replayShardBounds(tos []int32, w, sh int) (lo, hi int) {
	lo, hi = shardRange(len(tos), w, sh)
	return alignPairBound(tos, lo), alignPairBound(tos, hi)
}

func (e parExecutor) replayStep(m *Machine, st *planStep, sr, dr []int64) {
	np := st.pairCount()
	w := e.workerCount(np)
	if w == 1 || np < parReplayMin {
		seqExecutor{}.replayStep(m, st, sr, dr)
		return
	}
	tos, froms := st.tos, st.froms
	if aliased(sr, dr) {
		// Stage all reads before any write, both phases over the same
		// aligned pair ranges.
		e.dispatch(m, w, func(sh int) {
			lo, hi := replayShardBounds(tos, w, sh)
			inbox := m.inbox
			for i := lo; i < hi; i++ {
				inbox[i] = sr[froms[i]]
			}
		})
		e.dispatch(m, w, func(sh int) {
			lo, hi := replayShardBounds(tos, w, sh)
			inbox := m.inbox
			for i := lo; i < hi; i++ {
				dr[tos[i]] = inbox[i]
			}
		})
		return
	}
	if st.segs != nil {
		e.dispatch(m, w, func(sh int) { st.replaySegShard(sr, dr, w, sh) })
		return
	}
	e.dispatch(m, w, func(sh int) {
		lo, hi := replayShardBounds(tos, w, sh)
		for i := lo; i < hi; i++ {
			dr[tos[i]] = sr[froms[i]]
		}
	})
}

// alignSegBound rounds a pair-index bound up until the destination it
// lands on is cache-line aligned, or the bound reaches the end of its
// seg. Monotone in i, so shard ranges stay well-ordered. (When a seg
// boundary itself splits a cache line — contiguous tos whose run broke
// on the from side — adjacent shards may touch that one line; that is
// harmless for correctness, destinations are still distinct.)
func (st *planStep) alignSegBound(i int) int {
	np := st.pairCount()
	if i <= 0 {
		return 0
	}
	if i >= np {
		return np
	}
	j := sort.Search(len(st.segs), func(k int) bool { return st.segStarts[k+1] > int32(i) })
	sg := st.segs[j]
	off := int32(i) - st.segStarts[j]
	to := sg.to + off
	aligned := (to + cacheLineWords - 1) / cacheLineWords * cacheLineWords
	off += aligned - to
	if off > sg.n {
		off = sg.n
	}
	return int(st.segStarts[j] + off)
}

// replaySegShard executes shard sh of a run-length step: the shard's
// pair range with destination-aligned bounds, realized as copy()
// calls over the seg pieces the range intersects.
func (st *planStep) replaySegShard(sr, dr []int64, w, sh int) {
	np := st.pairCount()
	lo := st.alignSegBound(sh * np / w)
	hi := st.alignSegBound((sh + 1) * np / w)
	if lo >= hi {
		return
	}
	j := sort.Search(len(st.segs), func(k int) bool { return st.segStarts[k+1] > int32(lo) })
	for ; j < len(st.segs) && int(st.segStarts[j]) < hi; j++ {
		sg := st.segs[j]
		s0, s1 := int(st.segStarts[j]), int(st.segStarts[j]+sg.n)
		if s0 < lo {
			s0 = lo
		}
		if s1 > hi {
			s1 = hi
		}
		off := int32(s0) - st.segStarts[j]
		cnt := int32(s1 - s0)
		copy(dr[sg.to+off:sg.to+off+cnt], sr[sg.from+off:sg.from+off+cnt])
	}
}
