// Execution engine: the pluggable strategy that carries out the
// per-PE work of a Machine — the transmit/deliver phases of a unit
// route and the per-PE sweeps of Set/SetMasked/Apply.
//
// Two executors are provided:
//
//   - Sequential(): the reference implementation, one pass over the
//     PEs in ascending order. This is the semantic ground truth.
//   - Parallel(workers): a sharded implementation that splits the PE
//     range into contiguous blocks, resolves every PE's selected
//     port and destination concurrently (one goroutine per shard),
//     and then merges the per-shard results deterministically: the
//     conflict scan walks senders in ascending PE order exactly like
//     the sequential executor, so Stats, PortUses, register contents
//     and receive-conflict diagnostics are bit-identical to
//     Sequential() for any program whose port/mask/assignment
//     functions are pure (no shared mutable state, no dependence on
//     evaluation order). Every port function in this repository is
//     pure; user programs that close over an *rand.Rand or other
//     order-sensitive state must use Sequential().
//
// The parallel executor pays off when port resolution is expensive
// (the star machine's Lemma-2 role tests cost O(n²) per PE) or the
// machine is large (S_9 has 362,880 PEs); the merge phase is a cheap
// linear scan either way.
package simd

import (
	"fmt"
	"runtime"
	"sync"
)

// Executor carries out the per-PE work of a Machine. Implementations
// are stateless configuration values and may be shared across
// machines; per-machine scratch lives in the Machine itself.
type Executor interface {
	// Name identifies the executor in diagnostics and bench records.
	Name() string

	// route executes the transmit+deliver phases of one unit route,
	// updating m.stats.Sent, m.portUses and the inbox/touched
	// scratch, and returns the number of receive conflicts.
	route(m *Machine, sr, dr []int64, portOf PortFunc) int

	// apply runs fn(pe) for every pe in [0, m.Size()).
	apply(m *Machine, fn func(pe int))
}

// Option configures a Machine at construction time.
type Option func(*Machine)

// WithExecutor selects the machine's execution engine. The default
// is Sequential().
func WithExecutor(e Executor) Option {
	return func(m *Machine) {
		if e != nil {
			m.exec = e
		}
	}
}

// Sequential returns the reference executor: one pass over the PEs
// in ascending order, no goroutines.
func Sequential() Executor { return seqExecutor{} }

// Parallel returns the sharded executor running the given number of
// worker goroutines per unit route; workers <= 0 selects
// runtime.GOMAXPROCS(0). Results are bit-identical to Sequential()
// for pure per-PE functions (see the package comment above).
func Parallel(workers int) Executor { return parExecutor{workers: workers} }

// --- sequential ---------------------------------------------------

type seqExecutor struct{}

func (seqExecutor) Name() string { return "sequential" }

func (seqExecutor) route(m *Machine, sr, dr []int64, portOf PortFunc) int {
	n := m.topo.Size()
	for i := 0; i < n; i++ {
		m.touched[i] = false
	}
	conflicts := 0
	for pe := 0; pe < n; pe++ {
		p := portOf(pe)
		if p < 0 {
			continue
		}
		to := m.topo.Neighbor(pe, p)
		if to < 0 {
			panic(fmt.Sprintf("simd: PE %d transmits through unconnected port %d", pe, p))
		}
		m.stats.Sent++
		m.portUses[p]++
		if m.touched[to] {
			conflicts++
			continue // first message wins; conflict recorded
		}
		m.touched[to] = true
		m.inbox[to] = sr[pe]
	}
	for pe := 0; pe < n; pe++ {
		if m.touched[pe] {
			dr[pe] = m.inbox[pe]
		}
	}
	return conflicts
}

func (seqExecutor) apply(m *Machine, fn func(pe int)) {
	n := m.topo.Size()
	for pe := 0; pe < n; pe++ {
		fn(pe)
	}
}

// --- parallel -----------------------------------------------------

type parExecutor struct{ workers int }

func (e parExecutor) Name() string {
	if e.workers <= 0 {
		return "parallel"
	}
	return fmt.Sprintf("parallel-%d", e.workers)
}

func (e parExecutor) workerCount(n int) int {
	w := e.workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// parScratch is the per-machine buffer set of the parallel executor,
// allocated lazily on the first parallel route/apply.
type parScratch struct {
	ports   []int32   // resolved port per sender; -1 = silent
	dests   []int32   // resolved destination per sender
	sent    []int64   // per-shard transmission count
	uses    [][]int64 // per-shard per-port use count
	badPE   []int     // per-shard lowest PE with an unconnected port
	badPort []int
	panics  []any // per-shard recovered panic value
}

func (m *Machine) parScratchFor(w int) *parScratch {
	n := m.topo.Size()
	s := m.par
	if s == nil || len(s.sent) < w {
		s = &parScratch{
			ports:   make([]int32, n),
			dests:   make([]int32, n),
			sent:    make([]int64, w),
			uses:    make([][]int64, w),
			badPE:   make([]int, w),
			badPort: make([]int, w),
			panics:  make([]any, w),
		}
		for i := range s.uses {
			s.uses[i] = make([]int64, m.topo.Ports())
		}
		m.par = s
	}
	return s
}

// shardRange returns the contiguous PE block of shard sh out of w.
func shardRange(n, w, sh int) (lo, hi int) {
	return sh * n / w, (sh + 1) * n / w
}

// rethrow re-raises the lowest-shard worker panic, if any, on the
// caller's goroutine so route/apply panics surface like sequential
// execution instead of crashing the process.
func (s *parScratch) rethrow(w int) {
	for sh := 0; sh < w; sh++ {
		if r := s.panics[sh]; r != nil {
			s.panics[sh] = nil
			panic(r)
		}
	}
}

func (e parExecutor) route(m *Machine, sr, dr []int64, portOf PortFunc) int {
	n := m.topo.Size()
	w := e.workerCount(n)
	if w == 1 {
		return seqExecutor{}.route(m, sr, dr, portOf)
	}
	s := m.parScratchFor(w)
	topo := m.topo

	// Phase 1 (parallel): each shard clears its slice of the touched
	// buffer, then resolves its senders' ports and destinations,
	// accumulating shard-local counters.
	var wg sync.WaitGroup
	for sh := 0; sh < w; sh++ {
		lo, hi := shardRange(n, w, sh)
		wg.Add(1)
		go func(sh, lo, hi int) {
			defer wg.Done()
			defer func() { s.panics[sh] = recover() }()
			for pe := lo; pe < hi; pe++ {
				m.touched[pe] = false
			}
			sent := int64(0)
			// Clear this shard's counters here, not in the merge:
			// a panicking route never reaches the merge, and stale
			// counts would corrupt the next route's PortUses if the
			// caller recovers.
			uses := s.uses[sh]
			for p := range uses {
				uses[p] = 0
			}
			bad, badPort := -1, 0
			for pe := lo; pe < hi; pe++ {
				p := portOf(pe)
				s.ports[pe] = int32(p)
				if p < 0 {
					continue
				}
				to := topo.Neighbor(pe, p)
				if to < 0 {
					if bad < 0 {
						bad, badPort = pe, p
					}
					s.ports[pe] = -1
					continue
				}
				s.dests[pe] = int32(to)
				sent++
				uses[p]++
			}
			s.sent[sh] = sent
			s.badPE[sh], s.badPort[sh] = bad, badPort
		}(sh, lo, hi)
	}
	wg.Wait()
	s.rethrow(w)
	for sh := 0; sh < w; sh++ {
		if s.badPE[sh] >= 0 {
			panic(fmt.Sprintf("simd: PE %d transmits through unconnected port %d",
				s.badPE[sh], s.badPort[sh]))
		}
	}

	// Merge counters in shard order (sums are order-independent, so
	// this matches the sequential totals exactly).
	for sh := 0; sh < w; sh++ {
		m.stats.Sent += s.sent[sh]
		uses := s.uses[sh]
		for p := range uses {
			m.portUses[p] += uses[p]
		}
	}

	// Phase 2 (sequential): conflict scan over senders in ascending
	// PE order — the same order the sequential executor uses, so the
	// first-message-wins outcome and the conflict count are
	// bit-identical.
	conflicts := 0
	for pe := 0; pe < n; pe++ {
		if s.ports[pe] < 0 {
			continue
		}
		to := int(s.dests[pe])
		if m.touched[to] {
			conflicts++
			continue
		}
		m.touched[to] = true
		m.inbox[to] = sr[pe]
	}

	// Phase 3 (parallel): deliver to the touched destinations,
	// sharded over the destination range.
	for sh := 0; sh < w; sh++ {
		lo, hi := shardRange(n, w, sh)
		wg.Add(1)
		go func(sh, lo, hi int) {
			defer wg.Done()
			defer func() { s.panics[sh] = recover() }()
			for pe := lo; pe < hi; pe++ {
				if m.touched[pe] {
					dr[pe] = m.inbox[pe]
				}
			}
		}(sh, lo, hi)
	}
	wg.Wait()
	s.rethrow(w)
	return conflicts
}

func (e parExecutor) apply(m *Machine, fn func(pe int)) {
	n := m.topo.Size()
	w := e.workerCount(n)
	if w == 1 {
		seqExecutor{}.apply(m, fn)
		return
	}
	s := m.parScratchFor(w)
	var wg sync.WaitGroup
	for sh := 0; sh < w; sh++ {
		lo, hi := shardRange(n, w, sh)
		wg.Add(1)
		go func(sh, lo, hi int) {
			defer wg.Done()
			defer func() { s.panics[sh] = recover() }()
			for pe := lo; pe < hi; pe++ {
				fn(pe)
			}
		}(sh, lo, hi)
	}
	wg.Wait()
	s.rethrow(w)
}
