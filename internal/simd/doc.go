// Package simd simulates the paper's SIMD multicomputer (Figure 1):
// N processing elements connected by an interconnection network,
// driven by a control unit that broadcasts instructions and masks.
// Each PE has named registers of word values; data moves only through
// unit routes, and the machine counts them — the paper's complexity
// measure (§2 item 6).
//
// Two models are supported (§2 item 5):
//
//   - SIMD-A: in one unit route every (selected) PE transmits along
//     the same port (the same dimension/generator).
//   - SIMD-B: in one unit route every (selected) PE may transmit to
//     any one of its neighbors.
//
// The simulator enforces the single-transmit rule by construction
// and detects receive conflicts (two messages arriving at one PE in
// the same unit route), which Lemma 5 proves never happen for the
// embedding's unit-route schedule.
//
// The package is organized in four layers; docs/architecture.md at
// the repository root walks the full stack from here up to the HTTP
// service.
//
// # Machine and register banks (simd.go, bank.go)
//
// A Machine is N PEs over a port-based Topology. Register state lives
// in a flat register bank: contiguous cache-line-aligned []int64
// arenas carved into fixed-stride slots, one slot per named register,
// stride = PE count rounded up to a whole number of 64-byte lines.
// Registers are addressed by name (Reg — a map lookup) or by dense
// handle (RegByHandle — pure array indexing); Handle resolves a name
// to its handle once.
//
// The bank's invariants are what the rest of the module leans on:
//
//   - Stability. Arena chunks are appended, never reallocated, so a
//     register's slice is valid, in place, for the machine's whole
//     lifetime — across EnsureReg growth (new registers carve new
//     slots), across Reset (contents are zeroed in place, capacity
//     kept), and therefore across the pooled reuse the job service is
//     built on. Hot loops and bound plans may hoist Reg slices once.
//   - Isolation. Slots never share a cache line (the stride rounds
//     up), and register slices have cap == len (three-index slices),
//     so an accidental append reallocates instead of bleeding into
//     the neighboring register.
//   - Cheap Reset. Zeroing is a linear clear() per chunk — one memset
//     pass over the arena, not a pointer chase over a map.
//
// # Executors (engine.go, pool.go)
//
// An Executor carries out the per-PE work: Sequential() is the
// reference (one ascending pass, the semantic ground truth);
// Parallel(w) shards the PE range over a persistent per-machine
// worker pool (ParallelSpawn is the measured spawn-per-route
// baseline). The parallel route keeps its conflict scan sequential in
// ascending sender order — exactly the sequential executor's order —
// so first-message-wins delivery, Stats, PortUses, register contents
// and conflict diagnostics are bit-identical to Sequential() for pure
// per-PE functions. Winning deliveries land in destination-range
// buckets (the sharded dirty list): each delivery shard owns a
// contiguous, cache-line-aligned slice of the destination space, so
// concurrent writers never false-share the destination register or
// the touched scratch.
//
// # Plans: record once, replay as a permutation (plan.go)
//
// Workloads repeat the same unit-route schedule thousands of times.
// Record captures a schedule's routes into planSteps; Replay
// re-executes them without closure dispatch, Neighbor calls or map
// lookups. A compiled step is a permutation-apply table: parallel
// arrays tos/froms sorted by ascending destination (legal because
// destinations are distinct within a step — conflicts were resolved
// at record time), so the replay inner loop
//
//	dr[tos[i]] = sr[froms[i]]
//
// streams its writes through the destination register in address
// order. Steps blocky enough that both indices advance in long +1
// runs additionally carry a run-length decomposition and replay as a
// handful of copy() calls — near-memcpy. Plans bind to a machine
// once (bindPlan), resolving register names to bank handles; the
// bank's stability invariant is what keeps those handles valid
// forever after. Parallel replay splits the pair range on
// destination-cache-line-aligned boundaries, so shards never
// false-share, and reuses the same pool as routes.
//
// Replay invariants, enforced by the parity tests:
//
//   - A recorded run and every replay of it are bit-identical: same
//     registers, Stats, PortUses and conflict counts (recording
//     executes through the same execStep code replay uses).
//   - Sequential and parallel replay are bit-identical.
//   - Replays read every source before writing any destination
//     (aliased src/dst steps stage through the inbox).
//   - Only pure schedules replay: Set/SetMasked/Apply during a
//     recording mark the plan impure, and impure plans are rejected
//     by Replay and never cached.
//
// PlanCache/SharedPlans share compiled plans across machines of the
// same shape (topology PlanKey × schedule key); RunPlanned and
// RunMemoized are the record-or-replay entry points the machine
// layers use.
package simd
