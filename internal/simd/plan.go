// Route-plan compilation: the machine's ahead-of-time layer.
//
// The paper's complexity measure is the unit route, and the repo's
// workloads (snake/shear sorts, broadcasts, mesh-route sweeps) run
// the *same* unit-route schedule thousands of times. Executing such
// a schedule through PortFunc closures re-resolves every PE's port
// and destination — closure dispatch, Neighbor() calls, role tests —
// on every repetition. A Plan performs that resolution exactly once:
//
//   - Record(schedule) runs the schedule normally while capturing
//     each unit route as a dense table of (to, from, port) delivery
//     triples with precomputed Sent/PortUses/conflict counters. The
//     recording pass itself executes through the same step code as
//     replay, so a recorded run is bit-identical to a replayed one.
//   - Replay(plan) re-executes the captured schedule with a tight
//     array walk: no closure calls, no Neighbor() calls, no map
//     lookups (registers are bound to []int64 handles at plan-bind
//     time, once per machine).
//   - PlanCache shares compiled plans across machines of the same
//     shape, keyed by (topology identity, schedule key); SharedPlans
//     is the process-wide instance the machine layers use.
//
// Purity requirements. Replay reproduces exactly what the recording
// observed, so a recordable schedule must be a pure function of the
// topology: its port/mask functions may not depend on register
// contents, external mutable state, or evaluation order, and the
// schedule must consist of unit routes only. Set/SetMasked/Apply
// inside a recording mark the plan impure — the schedule still
// executes correctly, but the plan is rejected by Replay and never
// cached (RunPlanned simply records again on the next call, which
// self-heals schedules whose first run triggers lazy one-time
// initialization through Apply). Direct register writes outside
// machine instructions are invisible to the recorder and must stay
// outside the recorded region. Schedule keys must uniquely determine
// the route sequence for the keyed topology: two schedules that can
// differ (e.g. via different masks or vertex maps) need different
// keys.
package simd

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// PlanKeyer is an optional Topology extension: a stable identity of
// the topology's shape (e.g. "star:8", "mesh:16x16"), letting
// compiled plans be cached and shared across machines of the same
// shape. Topologies without it can still use the explicit
// Record/Replay API, but RunPlanned (and RunMemoized) has no cache
// key for them and simply runs the schedule through the closures.
type PlanKeyer interface{ PlanKey() string }

// planStep is one compiled unit route, stored as a permutation-apply
// table: dst[tos[i]] := src[froms[i]] for every i. Only the winning
// deliveries are kept (first message wins, resolved in ascending
// sender order exactly like the sequential executor); conflicting and
// silent senders are folded into the precomputed counters. After
// recording, the table is sorted by ascending destination — legal
// because destinations are distinct within a step — so replay writes
// stream through the destination register in address order, and
// parallel shards split on cache-line-aligned destination boundaries
// that can never false-share. ports is carried per delivery only for
// Validate and diagnostics; the hot loop never reads it.
type planStep struct {
	src, dst  int // indices into Plan.regs
	modelA    bool
	conflicts int
	sent      int64
	tos       []int32
	froms     []int32
	ports     []int16
	// segs is the run-length decomposition of the permutation: maximal
	// runs where both to and from advance by +1 compile to copy()
	// calls (near-memcpy, no per-element bounds checks). It is non-nil
	// only when the step is "blocky" enough for the copy path to win.
	// segStarts[j] is the pair index where segs[j] begins, with a final
	// entry equal to pairCount(), so shards can split a step at pair
	// granularity and binary-search their way back to segs.
	segs      []planSeg
	segStarts []int32
	uses      []int64 // per-port transmission counts
}

// planSeg is one contiguous run of a compiled step:
// copy(dst[to:to+n], src[from:from+n]).
type planSeg struct{ to, from, n int32 }

// pairCount returns the number of winning deliveries of the step.
func (st *planStep) pairCount() int { return len(st.tos) }

// segMinAvgRun is the minimum average run length at which the
// run-length copy path replaces the gather loop: below it, per-seg
// call overhead beats the bounds-check savings.
const segMinAvgRun = 8

// finalize sorts the delivery table by ascending destination and
// attaches the run-length decomposition when profitable. Reordering
// is semantics-preserving: destinations are distinct (first message
// wins already resolved), and replay reads all sources before any
// write lands (aliased steps stage through the inbox).
func (st *planStep) finalize() {
	n := len(st.tos)
	if n == 0 {
		return
	}
	sort.Sort((*byDestination)(st))
	segs := []planSeg{{to: st.tos[0], from: st.froms[0], n: 1}}
	for i := 1; i < n; i++ {
		last := &segs[len(segs)-1]
		if st.tos[i] == last.to+last.n && st.froms[i] == last.from+last.n {
			last.n++
			continue
		}
		segs = append(segs, planSeg{to: st.tos[i], from: st.froms[i], n: 1})
	}
	if n/len(segs) >= segMinAvgRun {
		st.segs = segs
		st.segStarts = make([]int32, len(segs)+1)
		at := int32(0)
		for j, sg := range segs {
			st.segStarts[j] = at
			at += sg.n
		}
		st.segStarts[len(segs)] = at
	}
}

// byDestination sorts a step's delivery table by ascending to,
// co-moving froms and ports.
type byDestination planStep

func (s *byDestination) Len() int           { return len(s.tos) }
func (s *byDestination) Less(i, j int) bool { return s.tos[i] < s.tos[j] }
func (s *byDestination) Swap(i, j int) {
	s.tos[i], s.tos[j] = s.tos[j], s.tos[i]
	s.froms[i], s.froms[j] = s.froms[j], s.froms[i]
	s.ports[i], s.ports[j] = s.ports[j], s.ports[i]
}

// Plan is a compiled sequence of unit routes: dense delivery tables
// resolved once from the schedule's PortFuncs and topology. Plans
// are immutable after Record and safe to replay concurrently from
// many machines of the same shape.
type Plan struct {
	topoKey string // "" when the topology has no PlanKey
	size    int
	ports   int
	impure  bool // schedule ran Set/SetMasked/Apply while recording
	regs    []string
	steps   []planStep
}

// Routes returns the number of unit routes the plan replays.
func (p *Plan) Routes() int { return len(p.steps) }

// Conflicts returns the total receive conflicts one replay adds.
func (p *Plan) Conflicts() int {
	c := 0
	for i := range p.steps {
		c += p.steps[i].conflicts
	}
	return c
}

// Regs returns the names of the registers the plan reads and writes.
func (p *Plan) Regs() []string { return append([]string(nil), p.regs...) }

// Impure reports whether the recorded schedule performed per-PE
// assignments (Set/SetMasked/Apply) that a replay cannot reproduce.
// Impure plans are rejected by Replay and never cached.
func (p *Plan) Impure() bool { return p.impure }

// Validate checks the plan against a topology: matching shape, ports
// in range, and every delivery travelling over a real link (no
// unconnected ports). Machines run it automatically when a plan is
// first bound.
func (p *Plan) Validate(topo Topology) error {
	if topo.Size() != p.size || topo.Ports() != p.ports {
		return fmt.Errorf("simd: plan compiled for %d PEs × %d ports, topology has %d × %d",
			p.size, p.ports, topo.Size(), topo.Ports())
	}
	for si := range p.steps {
		st := &p.steps[si]
		for i := range st.tos {
			to, from, port := st.tos[i], st.froms[i], st.ports[i]
			if port < 0 || int(port) >= p.ports {
				return fmt.Errorf("simd: plan step %d uses port %d of %d", si, port, p.ports)
			}
			if got := topo.Neighbor(int(from), int(port)); got != int(to) {
				return fmt.Errorf("simd: plan step %d delivers PE %d → %d through port %d, but the topology routes it to %d",
					si, from, to, port, got)
			}
		}
	}
	return nil
}

// planRecorder captures unit routes into a plan under construction.
type planRecorder struct {
	plan   *Plan
	regIdx map[string]int
}

func (r *planRecorder) reg(name string) int {
	if i, ok := r.regIdx[name]; ok {
		return i
	}
	i := len(r.plan.regs)
	r.plan.regs = append(r.plan.regs, name)
	r.regIdx[name] = i
	return i
}

// markImpure flags the plan under construction, if any, as
// non-replayable (see the package comment on purity).
func (m *Machine) markImpure() {
	if m.rec != nil {
		m.rec.plan.impure = true
	}
}

// MarkImpure is the exported hook for schedule steps the recorder
// cannot capture — direct register writes outside machine
// instructions. Machine layers call it when such a step executes
// during a recording, so the resulting plan is rejected instead of
// silently replaying an incomplete schedule. A no-op outside
// recordings.
func (m *Machine) MarkImpure() { m.markImpure() }

// Recording reports whether the machine is currently recording.
func (m *Machine) Recording() bool { return m.rec != nil }

// PlansEnabled reports whether plan recording/replay is enabled on
// this machine (it is by default; see WithPlans/SetPlans).
func (m *Machine) PlansEnabled() bool { return !m.plansOff }

// SetPlans enables or disables the plan layer at runtime. Disabling
// it re-routes every planned operation through the original
// closure-resolved path — the reference implementation plans are
// tested against, and the baseline the plan benchmarks measure.
func (m *Machine) SetPlans(enabled bool) { m.plansOff = !enabled }

// WithPlans is the construction-time form of SetPlans.
func WithPlans(enabled bool) Option {
	return func(m *Machine) { m.plansOff = !enabled }
}

// Record runs schedule with plan recording enabled and returns the
// compiled plan. The schedule executes normally — registers, Stats,
// PortUses and conflict diagnostics advance exactly as they would
// without recording — while every unit route is additionally
// resolved into the plan's dense delivery tables.
func (m *Machine) Record(schedule func()) *Plan {
	if m.rec != nil {
		panic("simd: Record called while already recording")
	}
	tk := ""
	if k, ok := m.topo.(PlanKeyer); ok {
		tk = k.PlanKey()
	}
	rec := &planRecorder{
		plan:   &Plan{topoKey: tk, size: m.topo.Size(), ports: m.topo.Ports()},
		regIdx: make(map[string]int),
	}
	m.rec = rec
	defer func() { m.rec = nil }()
	schedule()
	return rec.plan
}

// recordRoute resolves one unit route into a plan step (ascending
// sender order, first message wins — the sequential executor's
// semantics) and executes it through the same step code replay uses.
func (m *Machine) recordRoute(src, dst string, portOf PortFunc, modelA bool) int {
	n := m.topo.Size()
	st := planStep{
		src:    m.rec.reg(src),
		dst:    m.rec.reg(dst),
		modelA: modelA,
		uses:   make([]int64, m.topo.Ports()),
	}
	m.clearTouched()
	for pe := 0; pe < n; pe++ {
		p := portOf(pe)
		if p < 0 {
			continue
		}
		to := m.topo.Neighbor(pe, p)
		if to < 0 {
			panic(fmt.Sprintf("simd: PE %d transmits through unconnected port %d", pe, p))
		}
		st.sent++
		st.uses[p]++
		if m.touched[to] {
			st.conflicts++
			continue
		}
		m.touched[to] = true
		m.touchedDirty = append(m.touchedDirty, int32(to))
		st.tos = append(st.tos, int32(to))
		st.froms = append(st.froms, int32(pe))
		st.ports = append(st.ports, int16(p))
	}
	m.resetTouched()
	st.finalize()
	m.execStep(&st, m.Reg(src), m.Reg(dst))
	m.rec.plan.steps = append(m.rec.plan.steps, st)
	if m.collector != nil {
		m.collector.RecordRoutes(1, st.conflicts)
	}
	return st.conflicts
}

// execStep applies one compiled step: delivery through the executor
// plus every counter update. Shared by replay and the recording pass
// itself, so a recorded run and its replays are bit-identical.
func (m *Machine) execStep(st *planStep, sr, dr []int64) {
	m.exec.replayStep(m, st, sr, dr)
	m.stats.UnitRoutes++
	if st.modelA {
		m.stats.ModelA++
	} else {
		m.stats.ModelB++
	}
	m.stats.Sent += st.sent
	m.stats.ReceiveConflicts += st.conflicts
	for p, u := range st.uses {
		if u != 0 {
			m.portUses[p] += u
		}
	}
}

// boundPlan holds a plan's register names resolved to this machine's
// bank handles — the map lookups paid once at bind time. Handles stay
// valid across EnsureReg growth and Reset (the bank never moves a
// register), so a bound plan survives the machine's whole pooled
// lifetime.
type boundPlan struct {
	handles []int
}

// bindPlan resolves and validates a plan against this machine, once
// per (machine, plan) pair. Registers the plan references are
// declared if missing (plans recorded on one machine routinely
// reference scratch registers a fresh machine has not created yet).
func (m *Machine) bindPlan(p *Plan) *boundPlan {
	if bp, ok := m.bound[p]; ok {
		return bp
	}
	if p.impure {
		panic("simd: cannot replay an impure plan (schedule ran Set/Apply while recording)")
	}
	if err := p.Validate(m.topo); err != nil {
		panic(err.Error())
	}
	bp := &boundPlan{handles: make([]int, len(p.regs))}
	for i, name := range p.regs {
		m.EnsureReg(name)
		bp.handles[i] = m.Handle(name)
	}
	if m.bound == nil {
		m.bound = make(map[*Plan]*boundPlan)
	}
	m.bound[p] = bp
	return bp
}

// Replay executes a compiled plan on this machine: the tight
// array-walk loop that replaces closure resolution. Stats, PortUses,
// register contents and conflict diagnostics advance bit-identically
// to running the recorded schedule. Returns the unit routes executed
// and the receive conflicts observed. Replaying inside an active
// recording splices the plan's steps into the plan under
// construction.
func (m *Machine) Replay(p *Plan) (routes, conflicts int) {
	bp := m.bindPlan(p)
	slices := m.bank.slices
	if m.rec != nil {
		for i := range p.steps {
			st := p.steps[i] // copy; delivery tables stay shared (read-only)
			st.src = m.rec.reg(p.regs[p.steps[i].src])
			st.dst = m.rec.reg(p.regs[p.steps[i].dst])
			m.execStep(&st, slices[bp.handles[p.steps[i].src]], slices[bp.handles[p.steps[i].dst]])
			m.rec.plan.steps = append(m.rec.plan.steps, st)
			conflicts += st.conflicts
		}
		if m.collector != nil {
			m.collector.RecordRoutes(len(p.steps), conflicts)
		}
		return len(p.steps), conflicts
	}
	// The collector is notified once per replay with batched totals —
	// timing and per-step calls stay out of the inner loop.
	var start time.Time
	if m.collector != nil {
		start = time.Now()
	}
	for i := range p.steps {
		st := &p.steps[i]
		m.execStep(st, slices[bp.handles[st.src]], slices[bp.handles[st.dst]])
		conflicts += st.conflicts
	}
	if m.collector != nil {
		m.collector.RecordReplay(time.Since(start), len(p.steps))
		m.collector.RecordRoutes(len(p.steps), conflicts)
	}
	return len(p.steps), conflicts
}

// PlanCache stores compiled plans keyed by (topology identity,
// schedule key), sharing one-time compilation across machines of the
// same shape. Safe for concurrent use.
type PlanCache struct {
	mu    sync.Mutex
	plans map[planCacheKey]*Plan
}

type planCacheKey struct{ topo, schedule string }

// NewPlanCache returns an empty cache.
func NewPlanCache() *PlanCache {
	return &PlanCache{plans: make(map[planCacheKey]*Plan)}
}

// SharedPlans is the process-wide plan cache every machine layer
// records into by default.
var SharedPlans = NewPlanCache()

// Len returns the number of cached plans.
func (c *PlanCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.plans)
}

// Reset drops every cached plan.
func (c *PlanCache) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.plans = make(map[planCacheKey]*Plan)
}

func (c *PlanCache) get(topoKey, schedule string) *Plan {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.plans[planCacheKey{topoKey, schedule}]
}

// put stores a plan; the first writer wins, so concurrent recorders
// of the same schedule converge on one shared plan.
func (c *PlanCache) put(topoKey, schedule string, p *Plan) *Plan {
	c.mu.Lock()
	defer c.mu.Unlock()
	k := planCacheKey{topoKey, schedule}
	if existing, ok := c.plans[k]; ok {
		return existing
	}
	c.plans[k] = p
	return p
}

// RunPlanned executes schedule exactly once through the plan layer:
// a cache hit replays the compiled plan, a miss records the schedule
// (executing it) and caches the result. Either way the machine
// advances exactly as if schedule had run directly. The returned
// plan is nil when planning was unavailable — plans disabled, a
// topology without PlanKey, a recording already in progress (the
// outer recording captures the routes), or an impure schedule.
// routes and conflicts report what the execution added to Stats.
func (m *Machine) RunPlanned(c *PlanCache, key string, schedule func()) (p *Plan, routes, conflicts int) {
	before := m.stats
	tk, keyed := m.topo.(PlanKeyer)
	switch {
	case m.plansOff || m.rec != nil || c == nil || !keyed:
		schedule()
	default:
		topoKey := tk.PlanKey()
		if cached := c.get(topoKey, key); cached != nil {
			m.Replay(cached)
			p = cached
		} else if rec := m.Record(schedule); !rec.impure {
			p = c.put(topoKey, key, rec)
		}
	}
	return p, m.stats.UnitRoutes - before.UnitRoutes, m.stats.ReceiveConflicts - before.ReceiveConflicts
}

// RunMemoized is RunPlanned with a caller-held memo map: a memo hit
// replays the plan directly, skipping the key formatting and the
// shared cache's lock on the hot path; a miss delegates to
// RunPlanned(c, key(), schedule) and memoizes any plan it returns.
// The memo key K must capture everything the schedule's route
// sequence depends on (the same contract as the string key).
func RunMemoized[K comparable](m *Machine, c *PlanCache, memo map[K]*Plan, k K, key func() string, schedule func()) (routes, conflicts int) {
	if p := memo[k]; p != nil && !m.plansOff {
		return m.Replay(p)
	}
	p, routes, conflicts := m.RunPlanned(c, key(), schedule)
	if p != nil {
		memo[k] = p
	}
	return routes, conflicts
}
