package simd

import (
	"fmt"
	"testing"
	"unsafe"
)

// shiftPlan records a one-step clockwise shift A→B and returns it.
// (keyedRing — a ring with a PlanKey — is shared with plan_test.go.)
func shiftPlan(m *Machine) *Plan {
	return m.Record(func() {
		m.RouteA("A", "B", 0, nil)
	})
}

func TestBankSlotAlignment(t *testing.T) {
	m := New(ring{100}) // not a multiple of cacheLineWords: stride must round up
	for i := 0; i < 2*bankChunkRegs+1; i++ {
		m.AddReg(fmt.Sprintf("r%d", i))
	}
	if s := m.bank.stride; s%cacheLineWords != 0 || s < 100 {
		t.Fatalf("stride %d is not a cache-line multiple covering n=100", s)
	}
	for i := 0; i < m.NumRegs(); i++ {
		r := m.RegByHandle(i)
		if len(r) != 100 || cap(r) != 100 {
			t.Fatalf("handle %d: len %d cap %d, want 100/100 (appends must not bleed)", i, len(r), cap(r))
		}
		if addr := uintptr(unsafe.Pointer(&r[0])); addr%cacheLineBytes != 0 {
			t.Fatalf("handle %d starts at %#x — not cache-line aligned", i, addr)
		}
	}
}

func TestBankAppendCannotClobberNeighbor(t *testing.T) {
	m := New(ring{8})
	m.AddReg("A")
	m.AddReg("B") // adjacent slot in the same chunk
	a := m.Reg("A")
	_ = append(a, 999) // cap == len forces a reallocation, not a bleed
	for pe, v := range m.Reg("B") {
		if v != 0 {
			t.Fatalf("append on A leaked into B[%d] = %d", pe, v)
		}
	}
}

// TestBankGrowthAfterPlanBind is the arena-stability contract: a plan
// bound to a machine holds register handles, and registers declared
// afterwards (forcing new chunks) must not move the bound registers
// or change the handles' meaning.
func TestBankGrowthAfterPlanBind(t *testing.T) {
	const n = 32
	rec := New(keyedRing{ring{n}})
	rec.AddReg("A")
	rec.AddReg("B")
	plan := shiftPlan(rec)

	m := New(keyedRing{ring{n}})
	m.AddReg("A")
	m.Set("A", func(pe int) int64 { return int64(pe + 1) })
	m.Replay(plan) // binds: declares B, resolves handles
	aPtr, bPtr := &m.Reg("A")[0], &m.Reg("B")[0]

	// Force growth past several chunk boundaries.
	for i := 0; i < 3*bankChunkRegs+1; i++ {
		m.EnsureReg(fmt.Sprintf("scratch%d", i))
	}
	if &m.Reg("A")[0] != aPtr || &m.Reg("B")[0] != bPtr {
		t.Fatal("EnsureReg growth moved an already-declared register")
	}

	m.Replay(plan) // replays through the pre-growth bound handles
	want := New(keyedRing{ring{n}})
	want.AddReg("A")
	want.AddReg("B")
	want.Set("A", func(pe int) int64 { return int64(pe + 1) })
	want.RouteA("A", "B", 0, nil)
	want.RouteA("A", "B", 0, nil)
	for pe := 0; pe < n; pe++ {
		if got, exp := m.Reg("B")[pe], want.Reg("B")[pe]; got != exp {
			t.Fatalf("post-growth replay diverged at PE %d: got %d want %d", pe, got, exp)
		}
	}
	if m.Stats().Sent != want.Stats().Sent {
		t.Fatalf("post-growth replay Sent = %d, want %d", m.Stats().Sent, want.Stats().Sent)
	}
}

// TestBankResetPreservesCapacity: Reset zeroes contents in place —
// same backing arrays, same arena size, no reallocation.
func TestBankResetPreservesCapacity(t *testing.T) {
	m := New(ring{64})
	for i := 0; i < bankChunkRegs+3; i++ { // span two chunks
		m.AddReg(fmt.Sprintf("r%d", i))
	}
	ptrs := make([]*int64, m.NumRegs())
	for i := range ptrs {
		r := m.RegByHandle(i)
		for pe := range r {
			r[pe] = int64(i*1000 + pe)
		}
		ptrs[i] = &r[0]
	}
	wordsBefore := m.bank.words()

	m.Reset()

	if got := m.bank.words(); got != wordsBefore {
		t.Fatalf("Reset changed arena capacity: %d words → %d", wordsBefore, got)
	}
	for i := range ptrs {
		r := m.RegByHandle(i)
		if &r[0] != ptrs[i] {
			t.Fatalf("Reset moved register %d", i)
		}
		for pe, v := range r {
			if v != 0 {
				t.Fatalf("Reset left register %d PE %d = %d", i, pe, v)
			}
		}
	}
}

// TestShardedRoutePostPanicClear: a parallel route that panics leaves
// the touched scratch dirty mid-flight; the next sharded route must
// detect this (touchedClean == false) and full-clear before resolving
// conflicts, or stale marks would fabricate receive conflicts. The
// machine is big enough that the route takes the sharded delivery
// path (n > parDeliverMin).
func TestShardedRoutePostPanicClear(t *testing.T) {
	const n = 3 * parDeliverMin
	m := New(ring{n}, WithExecutor(Parallel(4)))
	defer m.Close()
	m.AddReg("A")
	m.AddReg("B")
	m.Set("A", func(pe int) int64 { return int64(pe) })

	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("poisoned route did not panic")
			}
		}()
		m.RouteB("A", "B", func(pe int) int {
			if pe == n/2 {
				panic("poisoned port function")
			}
			return 0
		})
	}()

	// Full ring shift: exactly n messages, zero conflicts — any stale
	// touched mark from the panicked route would surface here as a
	// phantom conflict (first-message-wins drops the delivery).
	if c := m.RouteA("A", "B", 0, nil); c != 0 {
		t.Fatalf("route after panic reported %d phantom conflicts", c)
	}
	for pe := 0; pe < n; pe++ {
		want := int64((pe - 1 + n) % n)
		if got := m.Reg("B")[pe]; got != want {
			t.Fatalf("post-panic route delivered B[%d] = %d, want %d", pe, got, want)
		}
	}
}

// TestShardedReplayLargeStepParity drives the sharded replay path
// (pair count above parReplayMin) with enough procs that the aligned
// shard boundaries actually split the table, and checks bit-identical
// results against sequential replay — including after a Reset, which
// must leave bound plans intact.
func TestShardedReplayLargeStepParity(t *testing.T) {
	const n = 3 * parReplayMin
	topo := keyedRing{ring{n}}

	rec := New(topo)
	rec.AddReg("A")
	rec.AddReg("B")
	plan := rec.Record(func() {
		rec.RouteA("A", "B", 0, nil)
		rec.RouteA("B", "A", 1, nil) // reverse shift, distinct src/dst pattern
	})

	run := func(m *Machine) ([]int64, []int64, Stats) {
		m.EnsureReg("A")
		m.Set("A", func(pe int) int64 { return int64(pe*7 + 3) })
		m.Replay(plan)
		m.Reset()
		m.Set("A", func(pe int) int64 { return int64(pe * 11) })
		m.Replay(plan)
		return m.Reg("A"), m.Reg("B"), m.Stats()
	}

	seqA, seqB, seqStats := run(New(topo))
	par := New(topo, WithExecutor(Parallel(4)))
	defer par.Close()
	parA, parB, parStats := run(par)

	if seqStats != parStats {
		t.Fatalf("sharded replay stats diverged:\nseq %+v\npar %+v", seqStats, parStats)
	}
	for pe := 0; pe < n; pe++ {
		if seqA[pe] != parA[pe] || seqB[pe] != parB[pe] {
			t.Fatalf("sharded replay diverged at PE %d: seq (%d, %d) par (%d, %d)",
				pe, seqA[pe], seqB[pe], parA[pe], parB[pe])
		}
	}
}
