// Persistent worker pool: the parallel executor's goroutines.
//
// The original parallel executor spawned fresh goroutines for every
// phase of every unit route — cheap individually, but the workloads
// here execute thousands of routes, so spawn/teardown churn became a
// measurable fraction of the per-route cost (BENCH_engine.json's
// speedup_parallel_vs_sequential ≈ 0.94 on the S_8 sweep). The pool
// keeps the workers parked on a channel instead: a machine starts it
// lazily on its first parallel route, reuses it across every
// route/apply/replay, and shuts it down via Close (with a GC cleanup
// as a backstop for machines that are never closed).
//
// The caller always executes shard 0 inline, so a pool for w-way
// sharding holds w-1 helper goroutines and the dispatching thread
// stays busy instead of sleeping in Wait.
package simd

import (
	"runtime"
	"sync"
)

// poolJob is one shard of a sharded phase.
type poolJob struct {
	fn func(sh int)
	sh int
	wg *sync.WaitGroup
}

// workerPool is a set of parked goroutines executing poolJobs. One
// pool belongs to one machine; machines are single-threaded by
// contract, so run is never called concurrently on the same pool.
type workerPool struct {
	jobs    chan poolJob
	helpers int // worker goroutines (the caller is shard 0)
	wg      sync.WaitGroup
	once    sync.Once
}

func newWorkerPool(helpers int) *workerPool {
	p := &workerPool{jobs: make(chan poolJob, helpers), helpers: helpers}
	for i := 0; i < helpers; i++ {
		go p.worker()
	}
	return p
}

func (p *workerPool) worker() {
	for j := range p.jobs {
		p.runJob(j)
	}
}

// runJob guarantees the Done even if fn panics; shard functions with
// user code recover internally (see parScratch.panics), so a panic
// escaping here is an invariant violation and crashes the process
// like any unrecovered goroutine panic — but without deadlocking the
// dispatcher first.
func (p *workerPool) runJob(j poolJob) {
	defer j.wg.Done()
	j.fn(j.sh)
}

// run executes fn(0) … fn(w-1): shards 1..w-1 on the pool's helpers,
// shard 0 on the calling goroutine.
func (p *workerPool) run(w int, fn func(sh int)) {
	if w <= 1 {
		fn(0)
		return
	}
	p.wg.Add(w - 1)
	for sh := 1; sh < w; sh++ {
		p.jobs <- poolJob{fn: fn, sh: sh, wg: &p.wg}
	}
	fn(0)
	p.wg.Wait()
}

// close releases the helper goroutines. Idempotent.
func (p *workerPool) close() {
	p.once.Do(func() { close(p.jobs) })
}

// poolFor returns the machine's persistent pool, starting (or
// growing) it so at least w-1 helpers are available.
func (m *Machine) poolFor(w int) *workerPool {
	if m.pool == nil || m.pool.helpers < w-1 {
		if m.pool != nil {
			m.pool.close()
		}
		pool := newWorkerPool(w - 1)
		// Backstop for machines that are never Closed: release the
		// helpers when the machine is collected. The cleanup must not
		// reference m itself, only the pool.
		runtime.AddCleanup(m, func(p *workerPool) { p.close() }, pool)
		m.pool = pool
	}
	return m.pool
}
