package simd

import (
	"fmt"
	"reflect"
	"testing"
)

// star4 is a many-to-one test topology: every PE's port 0 leads to
// PE 0 (except PE 0 itself, whose port 0 leads to PE 1). Port 1 is
// unconnected everywhere. It exists to provoke receive conflicts.
type star4 struct{ n int }

func (s star4) Size() int  { return s.n }
func (s star4) Ports() int { return 2 }
func (s star4) Neighbor(pe, port int) int {
	if port != 0 {
		return -1
	}
	if pe == 0 {
		return 1
	}
	return 0
}

// snapshot captures everything an executor could get wrong.
type snapshot struct {
	Stats    Stats
	PortUses []int64
	Regs     map[string][]int64
	Returns  []int // per-route conflict return values
}

func takeSnapshot(m *Machine, names []string, returns []int) snapshot {
	regs := make(map[string][]int64)
	for _, name := range names {
		regs[name] = append([]int64(nil), m.Reg(name)...)
	}
	return snapshot{
		Stats:    m.Stats(),
		PortUses: m.PortUses(),
		Regs:     regs,
		Returns:  append([]int(nil), returns...),
	}
}

// mixedProgram drives a deterministic mix of masked SIMD-A routes,
// per-PE SIMD-B routes, conflicting routes and masked assignments.
func mixedProgram(m *Machine) snapshot {
	m.AddReg("A")
	m.AddReg("B")
	m.Set("A", func(pe int) int64 { return int64(3*pe + 1) })
	m.Set("B", func(pe int) int64 { return -1 })
	// safe keeps a SIMD-B port selection silent at topology
	// boundaries (RouteB panics on unconnected ports by contract).
	safe := func(pe, p int) int {
		if m.Topology().Neighbor(pe, p) < 0 {
			return -1
		}
		return p
	}
	var returns []int
	returns = append(returns, m.RouteA("A", "B", 0, nil))
	returns = append(returns, m.RouteA("B", "A", 1, func(pe int) bool { return pe%2 == 0 }))
	returns = append(returns, m.RouteB("A", "B", func(pe int) int {
		if pe%3 == 0 {
			return -1
		}
		return safe(pe, pe%2)
	}))
	m.SetMasked("A", func(pe int) int64 { return m.Reg("B")[pe] * 2 }, func(pe int) bool { return pe%4 == 1 })
	// Deliberate conflict: all odd PEs transmit counter-clockwise and
	// all even PEs transmit clockwise, so neighbors collide.
	returns = append(returns, m.RouteB("A", "B", func(pe int) int { return safe(pe, pe%2) }))
	returns = append(returns, m.RouteA("B", "B", 0, nil)) // src == dst
	return takeSnapshot(m, []string{"A", "B"}, returns)
}

func executorsUnderTest() map[string]Executor {
	return map[string]Executor{
		"parallel-1":          Parallel(1),
		"parallel-2":          Parallel(2),
		"parallel-3":          Parallel(3),
		"parallel-7":          Parallel(7),
		"parallel-gomaxprocs": Parallel(0),
		"parallel-spawn-2":    ParallelSpawn(2),
		"parallel-spawn-5":    ParallelSpawn(5),
	}
}

func TestParallelMatchesSequentialMixedProgram(t *testing.T) {
	for _, topo := range []Topology{ring{n: 12}, ring{n: 1}, line{n: 9}, line{n: 30}} {
		want := mixedProgram(New(topo, WithExecutor(Sequential())))
		for name, exec := range executorsUnderTest() {
			got := mixedProgram(New(topo, WithExecutor(exec)))
			if !reflect.DeepEqual(want, got) {
				t.Errorf("%s on %T: snapshot diverged from sequential\nseq: %+v\npar: %+v",
					name, topo, want, got)
			}
		}
	}
}

// TestParallelConflictMergeDeterministic checks the first-message-
// wins rule under heavy many-to-one conflicts: the lowest sender PE
// must win regardless of shard boundaries, and the conflict count
// must match the sequential executor exactly.
func TestParallelConflictMergeDeterministic(t *testing.T) {
	program := func(m *Machine) snapshot {
		m.AddReg("V")
		m.AddReg("W")
		m.Set("V", func(pe int) int64 { return int64(100 + pe) })
		m.Set("W", func(pe int) int64 { return 0 })
		var returns []int
		// Every PE transmits to PE 0 (PE 0 to PE 1): n-1 senders
		// collide at PE 0.
		returns = append(returns, m.RouteB("V", "W", func(pe int) int { return 0 }))
		return takeSnapshot(m, []string{"V", "W"}, returns)
	}
	topo := star4{n: 64}
	want := program(New(topo))
	if want.Stats.ReceiveConflicts != 62 { // 63 senders to PE 0, 1 winner
		t.Fatalf("sequential conflicts = %d, want 62", want.Stats.ReceiveConflicts)
	}
	if want.Regs["W"][0] != 101 { // lowest sender to PE 0 is PE 1
		t.Fatalf("sequential winner = %d, want 101", want.Regs["W"][0])
	}
	for name, exec := range executorsUnderTest() {
		got := program(New(topo, WithExecutor(exec)))
		if !reflect.DeepEqual(want, got) {
			t.Errorf("%s: conflict merge diverged\nseq: %+v\npar: %+v", name, want, got)
		}
	}
}

func TestParallelUnconnectedPortPanicMessage(t *testing.T) {
	mustPanic := func(exec Executor) (msg string) {
		defer func() { msg = fmt.Sprint(recover()) }()
		m := New(line{n: 16}, WithExecutor(exec))
		m.AddReg("A")
		m.RouteB("A", "A", func(pe int) int { return 0 }) // PE 15 has no clockwise link
		return ""
	}
	want := mustPanic(Sequential())
	if want == "" {
		t.Fatal("sequential executor did not panic")
	}
	for name, exec := range executorsUnderTest() {
		if got := mustPanic(exec); got != want {
			t.Errorf("%s panic = %q, want %q", name, got, want)
		}
	}
}

// TestPortUsesNotInflatedAfterRecoveredRoutePanic pins the shard
// counter lifecycle: a route that panics never reaches the merge, so
// its per-shard counts must not leak into the next route's PortUses.
func TestPortUsesNotInflatedAfterRecoveredRoutePanic(t *testing.T) {
	m := New(line{n: 16}, WithExecutor(Parallel(4)))
	m.AddReg("A")
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("route through unconnected port did not panic")
			}
		}()
		m.RouteB("A", "A", func(pe int) int { return 0 }) // PE 15 is unconnected
	}()
	base := m.PortUses()
	m.RouteA("A", "A", 0, nil) // 15 senders on a 16-PE line
	got := m.PortUses()
	if got[0]-base[0] != 15 {
		t.Errorf("port 0 uses grew by %d after a recovered panic, want exactly 15", got[0]-base[0])
	}
}

func TestParallelApplyPanicPropagates(t *testing.T) {
	m := New(ring{n: 8}, WithExecutor(Parallel(4)))
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("recover() = %v, want boom", r)
		}
	}()
	m.Apply(func(pe int) {
		if pe == 5 {
			panic("boom")
		}
	})
}

func TestApplyCoversEveryPEOnce(t *testing.T) {
	for name, exec := range executorsUnderTest() {
		m := New(ring{n: 37}, WithExecutor(exec))
		m.AddReg("C")
		c := m.Reg("C")
		m.Apply(func(pe int) { c[pe]++ })
		for pe, v := range c {
			if v != 1 {
				t.Fatalf("%s: PE %d visited %d times", name, pe, v)
			}
		}
	}
}

func TestExecutorNamesAndDefault(t *testing.T) {
	if got := New(ring{n: 2}).Executor().Name(); got != "sequential" {
		t.Errorf("default executor = %q, want sequential", got)
	}
	if got := Parallel(4).Name(); got != "parallel-4" {
		t.Errorf("Parallel(4).Name() = %q", got)
	}
	if got := Parallel(0).Name(); got != "parallel" {
		t.Errorf("Parallel(0).Name() = %q", got)
	}
}
