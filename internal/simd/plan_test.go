package simd

import (
	"reflect"
	"strings"
	"testing"
)

// routeProgram is a pure, route-only schedule (recordable): masked
// SIMD-A routes, per-PE SIMD-B routes, a deliberate conflict and an
// aliased (src == dst) route.
func routeProgram(m *Machine) []int {
	safe := func(pe, p int) int {
		if m.Topology().Neighbor(pe, p) < 0 {
			return -1
		}
		return p
	}
	var returns []int
	returns = append(returns, m.RouteA("A", "B", 0, nil))
	returns = append(returns, m.RouteA("B", "A", 1, func(pe int) bool { return pe%2 == 0 }))
	returns = append(returns, m.RouteB("A", "B", func(pe int) int {
		if pe%3 == 0 {
			return -1
		}
		return safe(pe, pe%2)
	}))
	// Deliberate conflicts: odd PEs counter-clockwise, even clockwise.
	returns = append(returns, m.RouteB("A", "B", func(pe int) int { return safe(pe, pe%2) }))
	returns = append(returns, m.RouteA("B", "B", 0, nil)) // src == dst
	return returns
}

func newPlanMachine(topo Topology, opts ...Option) *Machine {
	m := New(topo, opts...)
	m.AddReg("A")
	m.AddReg("B")
	init := func() {
		a, b := m.Reg("A"), m.Reg("B")
		for pe := range a {
			a[pe] = int64(3*pe + 1)
			b[pe] = -1
		}
	}
	init()
	return m
}

func resetPlanMachine(m *Machine) {
	a, b := m.Reg("A"), m.Reg("B")
	for pe := range a {
		a[pe] = int64(3*pe + 1)
		b[pe] = -1
	}
	m.ResetStats()
}

// TestReplayBitIdenticalToClosureExecution is the core determinism
// contract: Stats, PortUses, registers and per-route conflict counts
// of a replayed plan must equal closure-resolved sequential
// execution, on every executor.
func TestReplayBitIdenticalToClosureExecution(t *testing.T) {
	for _, topo := range []Topology{ring{n: 12}, ring{n: 1}, line{n: 9}, line{n: 30}, star4{n: 64}} {
		ref := newPlanMachine(topo, WithExecutor(Sequential()))
		refReturns := routeProgram(ref)
		want := takeSnapshot(ref, []string{"A", "B"}, refReturns)

		for name, exec := range executorsUnderTest() {
			rec := newPlanMachine(topo, WithExecutor(exec))
			plan := rec.Record(func() { routeProgram(rec) })
			if plan.Impure() {
				t.Fatalf("%s on %T: route-only program recorded as impure", name, topo)
			}
			got := takeSnapshot(rec, []string{"A", "B"}, refReturns)
			if !reflect.DeepEqual(want, got) {
				t.Errorf("%s on %T: recording run diverged from closures\nwant %+v\ngot  %+v", name, topo, want, got)
			}

			resetPlanMachine(rec)
			routes, conflicts := rec.Replay(plan)
			if routes != want.Stats.UnitRoutes || conflicts != want.Stats.ReceiveConflicts {
				t.Errorf("%s on %T: Replay returned (%d, %d), want (%d, %d)",
					name, topo, routes, conflicts, want.Stats.UnitRoutes, want.Stats.ReceiveConflicts)
			}
			got = takeSnapshot(rec, []string{"A", "B"}, refReturns)
			if !reflect.DeepEqual(want, got) {
				t.Errorf("%s on %T: replay diverged from closures\nwant %+v\ngot  %+v", name, topo, want, got)
			}
		}
	}
}

// TestReplayAcrossTwoMachines records on one machine and replays on
// a second, fresh machine of the same topology: registers (including
// scratch registers the fresh machine never declared), Stats and
// conflicts must match a closure run on a third machine.
func TestReplayAcrossTwoMachines(t *testing.T) {
	topo := ring{n: 20}
	rec := newPlanMachine(topo)
	plan := rec.Record(func() { routeProgram(rec) })

	ref := newPlanMachine(topo)
	routeProgram(ref)
	want := takeSnapshot(ref, []string{"A", "B"}, nil)

	fresh := newPlanMachine(topo)
	fresh.Replay(plan)
	got := takeSnapshot(fresh, []string{"A", "B"}, nil)
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("cross-machine replay diverged\nwant %+v\ngot  %+v", want, got)
	}
}

// TestReplayConflictSchedule pins the first-message-wins rule under
// heavy many-to-one conflicts: 63 senders collide at PE 0 and the
// replayed winner, loser count and Stats must match the closure run.
func TestReplayConflictSchedule(t *testing.T) {
	topo := star4{n: 64}
	run := func(m *Machine) int {
		return m.RouteB("A", "B", func(pe int) int { return 0 })
	}
	ref := newPlanMachine(topo)
	run(ref)
	want := takeSnapshot(ref, []string{"A", "B"}, nil)
	if want.Stats.ReceiveConflicts != 62 {
		t.Fatalf("closure conflicts = %d, want 62", want.Stats.ReceiveConflicts)
	}

	rec := newPlanMachine(topo)
	plan := rec.Record(func() { run(rec) })
	if plan.Conflicts() != 62 {
		t.Fatalf("plan.Conflicts() = %d, want 62", plan.Conflicts())
	}
	fresh := newPlanMachine(topo)
	if _, conflicts := fresh.Replay(plan); conflicts != 62 {
		t.Fatalf("replay conflicts = %d, want 62", conflicts)
	}
	got := takeSnapshot(fresh, []string{"A", "B"}, nil)
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("conflict replay diverged\nwant %+v\ngot  %+v", want, got)
	}
}

// keyedRing wraps ring with a PlanKey so RunPlanned can cache.
type keyedRing struct{ ring }

func (k keyedRing) PlanKey() string { return "test-ring" }

func TestRunPlannedCachesAndReplays(t *testing.T) {
	cache := NewPlanCache()
	topo := keyedRing{ring{n: 16}}
	calls := 0
	schedule := func(m *Machine) func() {
		return func() { calls++; m.RouteA("A", "B", 0, nil) }
	}

	m1 := newPlanMachine(topo)
	p1, routes, _ := m1.RunPlanned(cache, "shift", schedule(m1))
	if p1 == nil || routes != 1 || calls != 1 {
		t.Fatalf("first RunPlanned: plan=%v routes=%d calls=%d", p1, routes, calls)
	}
	p2, routes, _ := m1.RunPlanned(cache, "shift", schedule(m1))
	if p2 != p1 || routes != 1 || calls != 1 {
		t.Fatalf("second RunPlanned did not replay the cached plan (calls=%d)", calls)
	}
	if m1.Stats().UnitRoutes != 2 {
		t.Fatalf("unit routes = %d, want 2", m1.Stats().UnitRoutes)
	}

	// A second machine of the same shape replays without recording.
	m2 := newPlanMachine(topo)
	p3, _, _ := m2.RunPlanned(cache, "shift", schedule(m2))
	if p3 != p1 || calls != 1 {
		t.Fatalf("cross-machine RunPlanned re-recorded (calls=%d)", calls)
	}
	if !reflect.DeepEqual(m2.Reg("B")[:8], m1.Reg("B")[:8]) {
		t.Fatalf("cross-machine replay registers diverged")
	}

	// Plans disabled: schedule runs raw, no plan returned.
	m3 := newPlanMachine(topo, WithPlans(false))
	p4, _, _ := m3.RunPlanned(cache, "shift", schedule(m3))
	if p4 != nil || calls != 2 {
		t.Fatalf("plans-off RunPlanned: plan=%v calls=%d", p4, calls)
	}
	if !m3.PlansEnabled() == false {
		t.Fatalf("PlansEnabled() inconsistent")
	}

	// Unkeyed topology: schedule runs raw every time.
	m4 := newPlanMachine(ring{n: 16})
	if p, _, _ := m4.RunPlanned(cache, "shift", schedule(m4)); p != nil {
		t.Fatalf("unkeyed topology produced a cached plan")
	}
	if cache.Len() != 1 {
		t.Fatalf("cache.Len() = %d, want 1", cache.Len())
	}
	cache.Reset()
	if cache.Len() != 0 {
		t.Fatalf("Reset did not clear the cache")
	}
}

// TestImpureScheduleNotCached: Set/Apply inside a recording mark the
// plan impure; RunPlanned must execute correctly, never cache it,
// and Replay must reject it.
func TestImpureScheduleNotCached(t *testing.T) {
	cache := NewPlanCache()
	topo := keyedRing{ring{n: 8}}
	m := newPlanMachine(topo)
	calls := 0
	impure := func() {
		calls++
		m.Set("A", func(pe int) int64 { return int64(pe) })
		m.RouteA("A", "B", 0, nil)
	}
	p, routes, _ := m.RunPlanned(cache, "impure", impure)
	if p != nil || routes != 1 || cache.Len() != 0 {
		t.Fatalf("impure schedule cached: plan=%v routes=%d len=%d", p, routes, cache.Len())
	}
	// Second call records again (still impure) but still executes.
	m.RunPlanned(cache, "impure", impure)
	if calls != 2 || m.Stats().UnitRoutes != 2 {
		t.Fatalf("impure schedule did not re-execute (calls=%d, routes=%d)", calls, m.Stats().UnitRoutes)
	}

	rec := m.Record(impure)
	if !rec.Impure() {
		t.Fatalf("plan not marked impure")
	}
	defer func() {
		if r := recover(); r == nil || !strings.Contains(panicString(r), "impure") {
			t.Fatalf("Replay of impure plan did not panic usefully: %v", r)
		}
	}()
	m.Replay(rec)
}

func panicString(v any) string {
	if s, ok := v.(string); ok {
		return s
	}
	return ""
}

// TestNestedRunPlannedSplices: a RunPlanned cache hit inside an
// active recording must splice the inner plan's steps into the outer
// plan, so replaying the outer plan reproduces the full schedule.
func TestNestedRunPlannedSplices(t *testing.T) {
	cache := NewPlanCache()
	topo := keyedRing{ring{n: 10}}
	m := newPlanMachine(topo)
	inner := func() { m.RouteA("A", "B", 0, nil) }
	// Prime the inner plan.
	m.RunPlanned(cache, "inner", inner)

	outer := m.Record(func() {
		m.RunPlanned(cache, "inner", inner) // cache hit → splice
		m.RouteA("B", "A", 1, nil)
	})
	if outer.Routes() != 2 {
		t.Fatalf("outer plan routes = %d, want 2 (inner step not spliced)", outer.Routes())
	}

	ref := newPlanMachine(topo)
	inner2 := func() { ref.RouteA("A", "B", 0, nil) }
	inner2()
	inner2()
	ref.RouteA("B", "A", 1, nil)
	want := takeSnapshot(ref, []string{"A", "B"}, nil)

	fresh := newPlanMachine(topo)
	fresh.RouteA("A", "B", 0, nil) // matches the priming run
	fresh.Replay(outer)
	got := takeSnapshot(fresh, []string{"A", "B"}, nil)
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("spliced replay diverged\nwant %+v\ngot  %+v", want, got)
	}
}

// TestPlanValidateRejectsWrongTopology: binding a plan to a machine
// whose topology disagrees must fail loudly.
func TestPlanValidateRejectsWrongTopology(t *testing.T) {
	rec := newPlanMachine(line{n: 9})
	plan := rec.Record(func() { rec.RouteA("A", "B", 0, nil) })
	if err := plan.Validate(line{n: 9}); err != nil {
		t.Fatalf("Validate on the recording topology failed: %v", err)
	}
	if err := plan.Validate(line{n: 30}); err == nil {
		t.Fatalf("Validate accepted a topology of the wrong size")
	}
	// ring{9} has the same size/ports but different links.
	if err := plan.Validate(ring{n: 9}); err != nil {
		// line links are a subset of ring links, so this can pass;
		// the reverse direction must not.
		t.Logf("line-plan on ring validated (links are a subset): %v", err)
	}
	recRing := newPlanMachine(ring{n: 9})
	ringPlan := recRing.Record(func() { recRing.RouteA("A", "B", 0, nil) })
	if err := ringPlan.Validate(line{n: 9}); err == nil {
		t.Fatalf("Validate accepted a ring plan on a line (wrap link missing)")
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("Replay on a mismatched machine did not panic")
		}
	}()
	newPlanMachine(line{n: 30}).Replay(plan)
}

// TestPlanRegsAndRoutes covers the plan introspection accessors.
func TestPlanRegsAndRoutes(t *testing.T) {
	m := newPlanMachine(ring{n: 6})
	plan := m.Record(func() { routeProgram(m) })
	if plan.Routes() != 5 {
		t.Fatalf("Routes() = %d, want 5", plan.Routes())
	}
	regs := plan.Regs()
	seen := map[string]bool{}
	for _, r := range regs {
		seen[r] = true
	}
	if len(regs) != 2 || !seen["A"] || !seen["B"] {
		t.Fatalf("Regs() = %v, want exactly A and B", regs)
	}
}

// TestShardedReplayMatchesSequential drives parExecutor.replayStep's
// sharded branch — the machine must be large enough that a step's
// pair count clears parReplayMin — including the two-phase inbox
// staging for aliased (src == dst) steps, and checks bit-identity
// against the sequential replay.
func TestShardedReplayMatchesSequential(t *testing.T) {
	topo := ring{n: 4 * parReplayMin}
	program := func(m *Machine) {
		m.RouteA("A", "B", 0, nil)                                // full-size step
		m.RouteA("B", "B", 1, nil)                                // aliased full-size step
		m.RouteA("A", "B", 0, func(pe int) bool { return false }) // empty step
	}
	rec := newPlanMachine(topo)
	plan := rec.Record(func() { program(rec) })
	for si := range plan.steps[:2] {
		if plan.steps[si].pairCount() < parReplayMin {
			t.Fatalf("step %d has %d pairs, below parReplayMin=%d — sharded branch not exercised",
				si, plan.steps[si].pairCount(), parReplayMin)
		}
	}
	want := takeSnapshot(rec, []string{"A", "B"}, nil)
	for name, exec := range executorsUnderTest() {
		m := newPlanMachine(topo, WithExecutor(exec))
		m.Replay(plan)
		got := takeSnapshot(m, []string{"A", "B"}, nil)
		if !reflect.DeepEqual(want, got) {
			t.Errorf("%s: sharded replay diverged from sequential recording", name)
		}
		m.Close()
	}
}

// TestTouchedRecoveryAfterRoutePanic: a route that panics mid-scan
// leaves the touched buffer dirty; the next route must start from a
// clean slate (the dirty-list optimization must not skip the
// recovery clear).
func TestTouchedRecoveryAfterRoutePanic(t *testing.T) {
	for name, exec := range map[string]Executor{
		"sequential": Sequential(), "parallel-3": Parallel(3), "spawn-3": ParallelSpawn(3),
	} {
		m := newPlanMachine(line{n: 16})
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: unconnected route did not panic", name)
				}
			}()
			// PEs send clockwise; PE 15 panics after earlier PEs have
			// already touched their destinations.
			m.RouteB("A", "B", func(pe int) int { return 0 })
		}()
		ref := newPlanMachine(line{n: 16}, WithExecutor(exec))
		ref.RouteA("A", "B", 0, nil)
		want := takeSnapshot(ref, []string{"A", "B"}, nil)
		m.ResetStats()
		m.RouteA("A", "B", 0, nil)
		got := takeSnapshot(m, []string{"A", "B"}, nil)
		if !reflect.DeepEqual(want.Regs, got.Regs) || want.Stats != got.Stats {
			t.Errorf("%s: post-panic route diverged\nwant %+v\ngot  %+v", name, want, got)
		}
	}
}

// TestPoolLifecycle: Close is idempotent, safe on sequential
// machines, and a closed machine keeps working (a fresh pool starts
// lazily).
func TestPoolLifecycle(t *testing.T) {
	seq := newPlanMachine(ring{n: 8})
	seq.Close()
	seq.Close()

	m := newPlanMachine(ring{n: 64}, WithExecutor(Parallel(4)))
	routeProgram(m)
	m.Close()
	m.Close() // idempotent
	resetPlanMachine(m)
	ref := newPlanMachine(ring{n: 64})
	refReturns := routeProgram(ref)
	want := takeSnapshot(ref, []string{"A", "B"}, refReturns)
	gotReturns := routeProgram(m)
	got := takeSnapshot(m, []string{"A", "B"}, gotReturns)
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("machine diverged after Close\nwant %+v\ngot  %+v", want, got)
	}
	m.Close()
}

// TestSpawnExecutorName pins the spawn-mode diagnostics names.
func TestSpawnExecutorName(t *testing.T) {
	if got := ParallelSpawn(4).Name(); got != "parallel-spawn-4" {
		t.Errorf("ParallelSpawn(4).Name() = %q", got)
	}
	if got := ParallelSpawn(0).Name(); got != "parallel-spawn" {
		t.Errorf("ParallelSpawn(0).Name() = %q", got)
	}
}
