package simd

import "testing"

// ring is a simple test topology: N PEs, port 0 = clockwise,
// port 1 = counter-clockwise.
type ring struct{ n int }

func (r ring) Size() int  { return r.n }
func (r ring) Ports() int { return 2 }
func (r ring) Neighbor(pe, port int) int {
	if port == 0 {
		return (pe + 1) % r.n
	}
	return (pe - 1 + r.n) % r.n
}

// line is a ring with the wrap link cut (boundary ports return -1).
type line struct{ n int }

func (l line) Size() int  { return l.n }
func (l line) Ports() int { return 2 }
func (l line) Neighbor(pe, port int) int {
	if port == 0 {
		if pe+1 >= l.n {
			return -1
		}
		return pe + 1
	}
	if pe == 0 {
		return -1
	}
	return pe - 1
}

func TestRegisters(t *testing.T) {
	m := New(ring{4})
	m.AddReg("A")
	if !m.HasReg("A") || m.HasReg("B") {
		t.Fatalf("HasReg wrong")
	}
	m.EnsureReg("A") // no-op
	m.EnsureReg("B")
	if !m.HasReg("B") {
		t.Fatalf("EnsureReg failed")
	}
	m.Set("A", func(pe int) int64 { return int64(pe * 10) })
	if m.Reg("A")[3] != 30 {
		t.Fatalf("Set failed")
	}
	m.SetMasked("A", func(pe int) int64 { return -1 }, func(pe int) bool { return pe%2 == 0 })
	if m.Reg("A")[0] != -1 || m.Reg("A")[1] != 10 {
		t.Fatalf("SetMasked failed: %v", m.Reg("A"))
	}
}

func TestAddRegDuplicatePanics(t *testing.T) {
	m := New(ring{2})
	m.AddReg("A")
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	m.AddReg("A")
}

func TestUnknownRegPanics(t *testing.T) {
	m := New(ring{2})
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	m.Reg("missing")
}

func TestRouteARing(t *testing.T) {
	m := New(ring{5})
	m.AddReg("A")
	m.AddReg("B")
	m.Set("A", func(pe int) int64 { return int64(pe) })
	m.RouteA("A", "B", 0, nil) // everyone sends clockwise
	for pe := 0; pe < 5; pe++ {
		want := int64((pe - 1 + 5) % 5)
		if m.Reg("B")[pe] != want {
			t.Fatalf("B[%d] = %d, want %d", pe, m.Reg("B")[pe], want)
		}
	}
	s := m.Stats()
	if s.UnitRoutes != 1 || s.ModelA != 1 || s.ModelB != 0 || s.Sent != 5 || s.ReceiveConflicts != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestRouteAMasked(t *testing.T) {
	m := New(ring{6})
	m.AddReg("A")
	m.AddReg("B")
	m.Set("A", func(pe int) int64 { return int64(pe + 100) })
	m.Set("B", func(pe int) int64 { return -7 })
	m.RouteA("A", "B", 0, func(pe int) bool { return pe%2 == 0 })
	for pe := 0; pe < 6; pe++ {
		want := int64(-7)
		if pe%2 == 1 { // receiver of even sender pe-1
			want = int64(pe - 1 + 100)
		}
		if m.Reg("B")[pe] != want {
			t.Fatalf("B[%d] = %d, want %d", pe, m.Reg("B")[pe], want)
		}
	}
}

func TestRouteABoundarySilent(t *testing.T) {
	// On a line, the last PE has no clockwise neighbor and must stay
	// silent rather than panic.
	m := New(line{4})
	m.AddReg("A")
	m.AddReg("B")
	m.Set("A", func(pe int) int64 { return int64(pe) })
	m.RouteA("A", "B", 0, nil)
	if m.Stats().Sent != 3 {
		t.Fatalf("sent = %d, want 3", m.Stats().Sent)
	}
	if m.Reg("B")[0] != 0 { // untouched (zero value)
		t.Fatalf("B[0] modified")
	}
}

func TestRouteBPerPEPorts(t *testing.T) {
	m := New(ring{4})
	m.AddReg("A")
	m.AddReg("B")
	m.Set("A", func(pe int) int64 { return int64(pe) })
	// PEs 0,1 send clockwise; 2 sends counter-clockwise; 3 silent.
	ports := []int{0, 0, 1, -1}
	m.RouteB("A", "B", func(pe int) int { return ports[pe] })
	if m.Reg("B")[1] != 0 || m.Reg("B")[2] != 1 {
		t.Fatalf("B = %v", m.Reg("B"))
	}
	s := m.Stats()
	if s.ModelB != 1 || s.Sent != 3 || s.ReceiveConflicts != 1 {
		// PE 1 receives from 0 (cw) and from 2 (ccw): conflict.
		t.Fatalf("stats = %+v", s)
	}
}

func TestReceiveConflictFirstWins(t *testing.T) {
	m := New(ring{3})
	m.AddReg("A")
	m.AddReg("B")
	m.Set("A", func(pe int) int64 { return int64(pe + 1) })
	// 0 sends cw to 1; 2 sends ccw to 1: conflict at 1, first (PE 0) wins.
	c := m.RouteB("A", "B", func(pe int) int {
		switch pe {
		case 0:
			return 0
		case 2:
			return 1
		}
		return -1
	})
	if c != 1 {
		t.Fatalf("conflicts = %d", c)
	}
	if m.Reg("B")[1] != 1 {
		t.Fatalf("B[1] = %d, want first sender's value 1", m.Reg("B")[1])
	}
}

func TestRouteThroughUnconnectedPortPanics(t *testing.T) {
	m := New(line{3})
	m.AddReg("A")
	m.AddReg("B")
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	m.RouteB("A", "B", func(pe int) int { return 0 }) // PE 2 has no port 0
}

func TestSelfRouteReadsBeforeWrites(t *testing.T) {
	// Routing a register into itself must behave as a simultaneous
	// shift, not a cascade.
	m := New(ring{5})
	m.AddReg("A")
	m.Set("A", func(pe int) int64 { return int64(pe) })
	m.RouteB("A", "A", func(pe int) int { return 0 })
	for pe := 0; pe < 5; pe++ {
		want := int64((pe - 1 + 5) % 5)
		if m.Reg("A")[pe] != want {
			t.Fatalf("A[%d] = %d, want %d", pe, m.Reg("A")[pe], want)
		}
	}
}

func TestResetStats(t *testing.T) {
	m := New(ring{3})
	m.AddReg("A")
	m.RouteA("A", "A", 0, nil)
	m.ResetStats()
	if m.Stats() != (Stats{}) {
		t.Fatalf("stats not reset")
	}
}

func TestSizeAndTopology(t *testing.T) {
	m := New(ring{7})
	if m.Size() != 7 || m.Topology().Ports() != 2 {
		t.Fatalf("size/topology accessors broken")
	}
}

func TestPortUses(t *testing.T) {
	m := New(ring{4})
	m.AddReg("A")
	m.AddReg("B")
	m.RouteA("A", "B", 0, nil)
	m.RouteA("A", "B", 1, func(pe int) bool { return pe == 0 })
	uses := m.PortUses()
	if uses[0] != 4 || uses[1] != 1 {
		t.Fatalf("port uses = %v", uses)
	}
	// Returned slice is a copy.
	uses[0] = 99
	if m.PortUses()[0] != 4 {
		t.Fatalf("PortUses leaked internal state")
	}
	m.ResetStats()
	for _, u := range m.PortUses() {
		if u != 0 {
			t.Fatalf("reset did not clear port uses")
		}
	}
}

func TestResetClearsRegistersAndStats(t *testing.T) {
	m := New(ring{6})
	m.AddReg("A")
	m.AddReg("B")
	m.Set("A", func(pe int) int64 { return int64(pe + 1) })
	m.RouteA("A", "B", 0, nil)
	if m.Stats().UnitRoutes == 0 || m.Stats().Sent == 0 {
		t.Fatal("route did not run")
	}
	m.Reset()
	if got := m.Stats(); got != (Stats{}) {
		t.Fatalf("stats survived Reset: %+v", got)
	}
	for _, uses := range m.PortUses() {
		if uses != 0 {
			t.Fatalf("port uses survived Reset: %v", m.PortUses())
		}
	}
	for _, name := range []string{"A", "B"} {
		for pe, v := range m.Reg(name) {
			if v != 0 {
				t.Fatalf("register %s[%d] = %d after Reset", name, pe, v)
			}
		}
	}
	// The reset machine must behave exactly like a fresh one.
	fresh := New(ring{6})
	fresh.AddReg("A")
	fresh.AddReg("B")
	run := func(m *Machine) (Stats, []int64) {
		m.Set("A", func(pe int) int64 { return int64(2 * pe) })
		m.RouteA("A", "B", 1, nil)
		return m.Stats(), append([]int64(nil), m.Reg("B")...)
	}
	fs, fb := run(fresh)
	rs, rb := run(m)
	if fs != rs {
		t.Fatalf("reset machine stats diverged: fresh %+v, reset %+v", fs, rs)
	}
	for pe := range fb {
		if fb[pe] != rb[pe] {
			t.Fatalf("reset machine register diverged at PE %d: %d != %d", pe, rb[pe], fb[pe])
		}
	}
}

func TestResetDuringRecordingPanics(t *testing.T) {
	m := New(ring{4})
	m.AddReg("A")
	defer func() {
		if recover() == nil {
			t.Fatal("Reset inside Record did not panic")
		}
	}()
	m.Record(func() { m.Reset() })
}

func TestResetRecoversDirtyTouchedScratch(t *testing.T) {
	// A route that panics mid-flight leaves the touched scratch dirty;
	// Reset must restore the clean state so the next route is exact.
	m := New(ring{4})
	m.AddReg("A")
	m.AddReg("B")
	func() {
		defer func() { recover() }()
		m.RouteB("A", "B", func(pe int) int {
			if pe == 2 {
				panic("boom")
			}
			return 0
		})
	}()
	m.Reset()
	m.Set("A", func(pe int) int64 { return int64(pe + 7) })
	if c := m.RouteA("A", "B", 0, nil); c != 0 {
		t.Fatalf("conflicts on a clean ring route after Reset: %d", c)
	}
	if got := m.Stats().Sent; got != 4 {
		t.Fatalf("Sent = %d after Reset, want 4", got)
	}
}
