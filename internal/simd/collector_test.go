package simd

import (
	"sync"
	"testing"
	"time"
)

// countingCollector tallies events; safe for concurrent use like real
// collectors must be.
type countingCollector struct {
	mu        sync.Mutex
	routes    int
	conflicts int
	replays   int
	replayNs  time.Duration
	replayRt  int
}

func (c *countingCollector) RecordRoutes(routes, conflicts int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.routes += routes
	c.conflicts += conflicts
}

func (c *countingCollector) RecordReplay(d time.Duration, routes int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.replays++
	c.replayNs += d
	c.replayRt += routes
}

func TestCollectorClosurePath(t *testing.T) {
	col := &countingCollector{}
	m := New(ring{8}, WithCollector(col), WithPlans(false))
	m.AddReg("A")
	m.AddReg("B")
	m.Set("A", func(pe int) int64 { return int64(pe) })
	m.RouteB("A", "B", func(pe int) int { return 0 })
	m.RouteB("A", "B", func(pe int) int { return 1 })
	if col.routes != 2 {
		t.Fatalf("collector routes = %d, want 2", col.routes)
	}
	if col.conflicts != m.Stats().ReceiveConflicts {
		t.Fatalf("collector conflicts = %d, want %d", col.conflicts, m.Stats().ReceiveConflicts)
	}
	if col.replays != 0 {
		t.Fatalf("closure path reported %d replays, want 0", col.replays)
	}
}

func TestCollectorRecordAndReplay(t *testing.T) {
	col := &countingCollector{}
	m := New(ring{8}, WithCollector(col))
	m.AddReg("A")
	m.AddReg("B")
	p := m.Record(func() {
		m.RouteB("A", "B", func(pe int) int { return 0 })
		m.RouteB("A", "B", func(pe int) int { return 1 })
	})
	if col.routes != 2 {
		t.Fatalf("recording routes = %d, want 2", col.routes)
	}
	routes, conflicts := m.Replay(p)
	if routes != 2 {
		t.Fatalf("replay routes = %d, want 2", routes)
	}
	if col.routes != 4 || col.conflicts != 2*conflicts {
		t.Fatalf("after replay: routes = %d conflicts = %d, want 4, %d", col.routes, col.conflicts, 2*conflicts)
	}
	if col.replays != 1 || col.replayRt != 2 {
		t.Fatalf("replays = %d (routes %d), want 1 (2)", col.replays, col.replayRt)
	}
	// Replays inside an active recording batch routes but are not
	// timed replays.
	m2 := New(ring{8}, WithCollector(col))
	m2.AddReg("A")
	m2.AddReg("B")
	m2.Record(func() { m2.Replay(p) })
	if col.replays != 1 {
		t.Fatalf("splice path reported a timed replay: %d", col.replays)
	}
	if col.routes != 6 {
		t.Fatalf("after splice: routes = %d, want 6", col.routes)
	}
}

func TestSetCollector(t *testing.T) {
	col := &countingCollector{}
	m := New(ring{4}, WithPlans(false))
	m.AddReg("A")
	m.AddReg("B")
	m.RouteB("A", "B", func(pe int) int { return 0 })
	if col.routes != 0 {
		t.Fatal("collector saw routes before install")
	}
	m.SetCollector(col)
	m.RouteB("A", "B", func(pe int) int { return 0 })
	if col.routes != 1 {
		t.Fatalf("collector routes = %d, want 1", col.routes)
	}
	m.SetCollector(nil)
	m.RouteB("A", "B", func(pe int) int { return 0 })
	if col.routes != 1 {
		t.Fatalf("removed collector still saw routes: %d", col.routes)
	}
	// Reset keeps the collector: it belongs to the machine's owner.
	m.SetCollector(col)
	m.Reset()
	m.RouteB("A", "B", func(pe int) int { return 0 })
	if col.routes != 2 {
		t.Fatalf("collector routes after Reset = %d, want 2", col.routes)
	}
}
