// Collector is the engine's outbound metrics hook. simd stays
// import-clean — it knows nothing about the metrics registry — while
// the service layer adapts its registry to this interface and passes
// it in via WithCollector.

package simd

import "time"

// Collector receives engine events. Implementations must be safe for
// concurrent use: pooled machines on different jobs share one
// collector. A nil collector (the default) costs the hot path one
// predictable branch.
type Collector interface {
	// RecordRoutes reports executed unit routes and the receive
	// conflicts they observed. Closure-path routes report per route;
	// plan replays report once per Replay with the batched totals, so
	// the replay inner loop stays free of per-step calls.
	RecordRoutes(routes, conflicts int)
	// RecordReplay reports one completed plan replay: wall time and
	// the number of steps replayed.
	RecordReplay(d time.Duration, routes int)
}

// WithCollector selects the machine's metrics collector (nil
// disables collection).
func WithCollector(c Collector) Option {
	return func(m *Machine) { m.collector = c }
}

// SetCollector installs (or, with nil, removes) the metrics
// collector on an existing machine.
func (m *Machine) SetCollector(c Collector) { m.collector = c }
