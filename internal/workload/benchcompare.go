// Interval bench records: the schema behind the CI bench-regression
// gate. Per Al Mohamad et al. ("Simultaneous Confidence Intervals
// for Ranks"), comparing point estimates of noisy measurements
// misleads — so the gate repeats the workload, summarizes the
// repetitions as a (min, median, max) interval, and a regression is
// declared only when the fresh interval falls WHOLLY below the
// committed baseline interval (scaled by a cross-host margin), never
// on a single-number comparison.
package workload

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// Interval summarizes repeated duration samples.
type Interval struct {
	MinNs    int64 `json:"min_ns"`
	MedianNs int64 `json:"median_ns"`
	MaxNs    int64 `json:"max_ns"`
}

// NewInterval folds samples (nanoseconds) into an interval.
func NewInterval(samples []int64) Interval {
	if len(samples) == 0 {
		return Interval{}
	}
	sorted := append([]int64(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return Interval{
		MinNs:    sorted[0],
		MedianNs: sorted[len(sorted)/2],
		MaxNs:    sorted[len(sorted)-1],
	}
}

// ThroughputInterval converts a duration interval into per-second
// rates: the FAST end of the time interval is the HIGH end of the
// rate interval.
func (iv Interval) ThroughputInterval() ThroughputInterval {
	rate := func(ns int64) float64 {
		if ns <= 0 {
			return 0
		}
		return 1e9 / float64(ns)
	}
	return ThroughputInterval{
		Min:    rate(iv.MaxNs),
		Median: rate(iv.MedianNs),
		Max:    rate(iv.MinNs),
	}
}

// ThroughputInterval is an interval of per-second rates (higher is
// better).
type ThroughputInterval struct {
	Min    float64 `json:"min"`
	Median float64 `json:"median"`
	Max    float64 `json:"max"`
}

// CompareBenchRecord is the schema of BENCH_compare.json: N repeated
// S_n mesh-route sweeps summarized as intervals. The committed copy
// is the baseline CI gates against.
type CompareBenchRecord struct {
	Benchmark  string             `json:"benchmark"`
	Timestamp  string             `json:"timestamp"`
	GoMaxProcs int                `json:"gomaxprocs"`
	N          int                `json:"n"`
	PEs        int                `json:"pes"`
	Reps       int                `json:"reps"`
	SamplesNs  []int64            `json:"samples_ns"`
	SweepNs    Interval           `json:"sweep_ns"`
	SweepsPS   ThroughputInterval `json:"sweeps_per_sec"`
}

// NewCompareBenchRecord folds raw sweep samples into the record.
func NewCompareBenchRecord(n, pes int, samples []int64, gomaxprocs int, timestamp string) CompareBenchRecord {
	iv := NewInterval(samples)
	return CompareBenchRecord{
		Benchmark:  fmt.Sprintf("mesh-route-sweep-interval-s%d", n),
		Timestamp:  timestamp,
		GoMaxProcs: gomaxprocs,
		N:          n,
		PEs:        pes,
		Reps:       len(samples),
		SamplesNs:  append([]int64(nil), samples...),
		SweepNs:    iv,
		SweepsPS:   iv.ThroughputInterval(),
	}
}

// RegressionAgainst reports whether the record's throughput interval
// falls wholly below the baseline interval scaled by margin
// (0 < margin ≤ 1 absorbs host-speed differences between the
// committing machine and CI runners): a regression means even the
// BEST fresh repetition is slower than margin × the WORST baseline
// repetition. Overlapping intervals never gate — that is the
// no-single-number-flake contract.
func (r CompareBenchRecord) RegressionAgainst(baseline CompareBenchRecord, margin float64) (bool, string) {
	if margin <= 0 || margin > 1 {
		margin = 1
	}
	floor := baseline.SweepsPS.Min * margin
	if r.SweepsPS.Max < floor {
		return true, fmt.Sprintf(
			"new interval [%.1f, %.1f] sweeps/s wholly below %.2f × baseline min %.1f sweeps/s",
			r.SweepsPS.Min, r.SweepsPS.Max, margin, baseline.SweepsPS.Min)
	}
	return false, fmt.Sprintf(
		"new interval [%.1f, %.1f] sweeps/s overlaps %.2f × baseline [%.1f, %.1f]",
		r.SweepsPS.Min, r.SweepsPS.Max, margin, baseline.SweepsPS.Min, baseline.SweepsPS.Max)
}

// WriteJSON writes the record as indented JSON.
func (r *CompareBenchRecord) WriteJSON(path string) error {
	return writeJSON(r, path)
}

// ReadCompareBenchRecord loads a committed baseline record.
func ReadCompareBenchRecord(path string) (CompareBenchRecord, error) {
	var rec CompareBenchRecord
	data, err := os.ReadFile(path)
	if err != nil {
		return rec, err
	}
	if err := json.Unmarshal(data, &rec); err != nil {
		return rec, fmt.Errorf("workload: bad bench record %s: %w", path, err)
	}
	return rec, nil
}
