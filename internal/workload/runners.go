// Machine-accepting runners for the five registry families that
// open up the previously idle packages: atallah/meshops (embedrect),
// permroute, virtual, graphalg (diagnostics) and the multi-phase
// pipeline. Like the runners in batch.go, each executes on a
// caller-supplied resource in post-construction state (fresh or
// Reset), drawing all randomness from an explicit *rand.Rand — so a
// pooled run is bit-identical to a standalone run of the same seed
// by construction.
package workload

import (
	"context"
	"fmt"
	"math/rand"

	"starmesh/internal/atallah"
	"starmesh/internal/graphalg"
	"starmesh/internal/meshops"
	"starmesh/internal/perm"
	"starmesh/internal/permroute"
	"starmesh/internal/star"
	"starmesh/internal/starsim"
	"starmesh/internal/virtual"
)

// RunEmbedRectOn realizes the appendix's d-dimensional rectangular
// mesh R = l_1×…×l_d on the star machine (grouped snake realization
// + the paper's embedding) and sweeps one grouped unit route along
// every rectangular dimension in both directions, verifying each
// delivery against the rectangular mesh's own Step function. The
// unit routes reported are the physical star routes of the sweep;
// Theorem 6 promises conflict freedom. ctx is checked before every
// grouped step.
func RunEmbedRectOn(ctx context.Context, sm *starsim.Machine, d int) (ScenarioResult, error) {
	n := sm.N
	if d < 1 || d > n-1 {
		return ScenarioResult{}, fmt.Errorf("embedrect needs d in [1,%d] for S_%d, got %d", n-1, n, d)
	}
	g := atallah.NewGrouped(atallah.Factorize(n, d))
	plan := meshops.NewGroupedPlan(g)
	st := meshops.NewStarStepper(sm)
	sm.EnsureReg("V")
	sm.EnsureReg("W")
	// V holds each PE's rectangular node id; after a grouped step
	// along (t, dir), every node with a neighbor in direction -dir
	// must hold that neighbor's id in W.
	rID := make([]int, sm.Size())
	for pe := 0; pe < sm.Size(); pe++ {
		rID[pe] = g.ToR(st.MeshOf(pe))
	}
	sm.Set("V", func(pe int) int64 { return int64(rID[pe]) })
	before := sm.Stats()
	for t := 0; t < d; t++ {
		for _, dir := range []int{+1, -1} {
			if ctx.Err() != nil {
				after := sm.Stats()
				return canceledPartial(ctx, ScenarioResult{
					UnitRoutes: after.UnitRoutes - before.UnitRoutes,
					Conflicts:  after.ReceiveConflicts - before.ReceiveConflicts,
				})
			}
			meshops.GroupedStep(st, plan, "V", "W", t, dir)
			w := sm.Reg("W")
			for pe := range w {
				from := g.R.Step(rID[pe], t, -dir)
				if from != -1 && w[pe] != int64(from) {
					return ScenarioResult{}, fmt.Errorf(
						"embedrect: grouped step t=%d dir=%+d delivered %d to rect node %d, want %d",
						t, dir, w[pe], rID[pe], from)
				}
			}
		}
	}
	after := sm.Stats()
	conflicts := after.ReceiveConflicts - before.ReceiveConflicts
	return ScenarioResult{
		UnitRoutes: after.UnitRoutes - before.UnitRoutes,
		Conflicts:  conflicts,
		OK:         conflicts == 0,
	}, nil
}

// PermPatterns lists the destination patterns permutation routing
// accepts. "valiant" routes the random pattern through Valiant's
// two-phase randomized scheme (a second seeded bijection as the
// intermediate hop).
var PermPatterns = []string{"random", "reversal", "inverse", "shift", "valiant"}

// RunPermRouteOn routes full permutation traffic on S_n obliviously:
// every node sources one message along its greedy shortest path,
// each directed link carries one message per unit route, blocked
// messages queue. UnitRoutes reports the total hops taken and
// Conflicts the queueing overhead — the synchronous steps beyond the
// distance lower bound that link contention cost (zero for the
// embedding's structured traffic, unavoidable for arbitrary
// patterns).
func RunPermRouteOn(ctx context.Context, n int, pattern string, seed int64) (ScenarioResult, error) {
	if err := ctx.Err(); err != nil {
		return ScenarioResult{}, err
	}
	order := int(perm.Factorial(n))
	var res permroute.Result
	switch pattern {
	case "", "random":
		res = permroute.Route(n, permroute.RandomDest(order, seed))
	case "reversal":
		res = permroute.Route(n, permroute.ReversalDest(order))
	case "inverse":
		res = permroute.Route(n, permroute.InverseDest(n))
	case "shift":
		res = permroute.Route(n, permroute.ShiftDest(order))
	case "valiant":
		res = permroute.RouteValiant(n, permroute.RandomDest(order, seed), seed+1)
	default:
		return ScenarioResult{}, fmt.Errorf("permroute: unknown pattern %q (want one of %v)", pattern, PermPatterns)
	}
	overhead := res.Steps - res.MaxDist
	if overhead < 0 {
		overhead = 0
	}
	return ScenarioResult{
		UnitRoutes: res.TotalHops,
		Conflicts:  overhead,
		OK:         res.Messages == order,
	}, nil
}

// RunVirtualOn snake-sorts (n+1)! keys of the given distribution on
// the virtualized machine — the mesh D_{n+1} hosted on S_n with n+1
// virtual nodes per PE. The reported unit routes are the physical
// star routes consumed (amortized ≤ 3 per virtual move; the extra
// dimension is a free intra-PE slot shuffle).
func RunVirtualOn(ctx context.Context, vm *virtual.Machine, d Dist, rng *rand.Rand) (ScenarioResult, error) {
	keys := KeysRand(d, vm.Big.Order(), rng)
	vm.EnsureReg("K")
	vm.Set("K", func(bigID int) int64 { return keys[bigID] })
	before := vm.SM.Stats()
	sorted, routes, err := vm.SnakeSortCtx(ctx, "K")
	if err != nil {
		return canceledPartial(ctx, ScenarioResult{
			UnitRoutes: routes,
			Conflicts:  vm.SM.Stats().ReceiveConflicts - before.ReceiveConflicts,
		})
	}
	if !sorted {
		return ScenarioResult{}, fmt.Errorf("virtual snake sort left keys unsorted")
	}
	conflicts := vm.SM.Stats().ReceiveConflicts - before.ReceiveConflicts
	return ScenarioResult{
		UnitRoutes: routes,
		Conflicts:  conflicts,
		OK:         sorted && conflicts == 0,
	}, nil
}

// RunDiagnosticsOn sweeps random vertex-hole patterns over the star
// graph: each trial deletes the given number of random vertices and
// measures, from a random surviving probe, how much of the machine
// stays reachable and at what eccentricity. With holes ≤ n-2 the
// (n-1)-connected star graph provably stays connected — a
// disconnected trial is counted in Conflicts and fails the
// self-check. UnitRoutes reports the summed measured eccentricities
// (the fault-degraded diameter observations).
func RunDiagnosticsOn(ctx context.Context, g *star.Graph, holes, trials int, rng *rand.Rand) (ScenarioResult, error) {
	if holes > g.N()-2 {
		return ScenarioResult{}, fmt.Errorf("diagnostics: %d holes exceed the survivable n-2 = %d", holes, g.N()-2)
	}
	order := g.Order()
	sumEcc := 0
	disconnected := 0
	removed := make([]bool, order)
	for t := 0; t < trials; t++ {
		if ctx.Err() != nil {
			return canceledPartial(ctx, ScenarioResult{UnitRoutes: sumEcc, Conflicts: disconnected})
		}
		clear(removed)
		for cut := 0; cut < holes; {
			v := rng.Intn(order)
			if !removed[v] {
				removed[v] = true
				cut++
			}
		}
		probe := rng.Intn(order)
		for removed[probe] {
			probe = rng.Intn(order)
		}
		holed := graphalg.WithoutVertices(g, removed)
		reached, ecc := graphalg.ReachableFrom(holed, probe)
		if reached != order-holes {
			disconnected++
			continue
		}
		sumEcc += ecc
	}
	return ScenarioResult{
		UnitRoutes: sumEcc,
		Conflicts:  disconnected,
		OK:         disconnected == 0,
	}, nil
}

// RunPipelineOn chains three phases on ONE star machine — the
// rectangular-embedding sweep, the snake sort, then a broadcast —
// resetting the machine between phases so each starts from
// post-construction state while the amortized topology, route
// tables, compiled plans and worker pool carry across. This is the
// pool-reuse story inside a single job: three workloads, one machine
// construction.
func RunPipelineOn(ctx context.Context, sm *starsim.Machine, d int, dist Dist, source int, rng *rand.Rand) (ScenarioResult, error) {
	phases := []func() (ScenarioResult, error){
		func() (ScenarioResult, error) { return RunEmbedRectOn(ctx, sm, d) },
		func() (ScenarioResult, error) { return RunSortOn(ctx, sm, dist, rng) },
		func() (ScenarioResult, error) { return RunBroadcastOn(ctx, sm, source) },
	}
	var total ScenarioResult
	total.OK = true
	for i, phase := range phases {
		if i > 0 {
			sm.Reset()
		}
		res, err := phase()
		if ctx.Err() != nil {
			total.UnitRoutes += res.UnitRoutes
			total.Conflicts += res.Conflicts
			return canceledPartial(ctx, total)
		}
		if err != nil {
			return ScenarioResult{}, fmt.Errorf("pipeline phase %d: %w", i+1, err)
		}
		total.UnitRoutes += res.UnitRoutes
		total.Conflicts += res.Conflicts
		total.OK = total.OK && res.OK
	}
	return total, nil
}
