// The scenario registry: the single source of truth mapping a
// scenario kind to everything the rest of the system needs to run
// it — spec validation and defaults, the machine-shape pool key, a
// resource constructor, a machine-accepting runner and the naming
// scheme. The job service (internal/serve), the experiments, both
// commands and the facade all dispatch through it, so adding a
// scenario is one Register call, not a set of parallel switches.
package workload

import (
	"context"
	"fmt"
	"strings"

	"starmesh/internal/simd"
)

// Resource is anything a scenario runs on and a machine pool can
// manage: reset between runs, closed when the pool drains. The SIMD
// machines satisfy it through simd.Machine; stateless kinds use
// graph or null resources.
type Resource interface {
	Reset()
	Close()
}

// Family describes one scenario kind end to end. Every field is
// required except Demo-independent metadata; Run receives a Resource
// produced by Build for a spec of the same Shape, in
// post-construction state (fresh or Reset — the runners' contract).
type Family struct {
	// Kind is the registry key, the spec's JSON "kind" value.
	Kind string
	// Summary is a one-line description for catalogs and usage text.
	Summary string
	// Package names the backing implementation package(s).
	Package string
	// PaperRef cites the paper section/theorem the family exercises.
	PaperRef string
	// Params lists the spec fields the family reads, for catalogs.
	Params string
	// Normalize validates the spec and fills defaults, returning the
	// canonical form. Errors name the field and the accepted range.
	Normalize func(Spec) (Spec, error)
	// Shape is the machine-pool key: specs with equal shapes run on
	// interchangeable resources.
	Shape func(Spec) string
	// Build constructs a fresh resource of the spec's shape with the
	// process's engine options applied.
	Build func(Spec, ...simd.Option) Resource
	// Run executes the spec on a resource of the matching shape. The
	// context is checked at cooperative cancellation checkpoints
	// inside the long sweep/sort loops: on cancellation Run returns
	// promptly with ctx's error and the partial result accumulated so
	// far (the resource stays Reset-safe for pooled reuse).
	Run func(context.Context, Spec, Resource) (ScenarioResult, error)
	// Name renders the spec in the scenario naming scheme.
	Name func(Spec) string
	// Demo returns a small representative spec for smoke runs.
	Demo func() Spec
}

// Registry is an ordered kind → Family table.
type Registry struct {
	order    []string
	families map[string]*Family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*Family)}
}

// Register adds a family; registering a duplicate or incomplete kind
// panics (registration is program wiring, not input handling).
func (r *Registry) Register(f Family) {
	if f.Kind == "" {
		panic("workload: Register needs a Kind")
	}
	if _, dup := r.families[f.Kind]; dup {
		panic(fmt.Sprintf("workload: scenario kind %q registered twice", f.Kind))
	}
	if f.Normalize == nil || f.Shape == nil || f.Build == nil || f.Run == nil || f.Name == nil || f.Demo == nil {
		panic(fmt.Sprintf("workload: scenario kind %q is missing a registry hook", f.Kind))
	}
	cp := f
	r.families[f.Kind] = &cp
	r.order = append(r.order, f.Kind)
}

// Lookup returns the family of a kind.
func (r *Registry) Lookup(kind string) (*Family, bool) {
	f, ok := r.families[kind]
	return f, ok
}

// Kinds returns every registered kind in registration order.
func (r *Registry) Kinds() []string {
	return append([]string(nil), r.order...)
}

// Families returns every family in registration order.
func (r *Registry) Families() []*Family {
	out := make([]*Family, 0, len(r.order))
	for _, k := range r.order {
		out = append(out, r.families[k])
	}
	return out
}

// Builtin is the process-wide registry holding every built-in
// scenario family; see families.go.
var Builtin = builtinRegistry()

// FamilyOf resolves a kind against the builtin registry with an
// actionable error naming every accepted kind.
func FamilyOf(kind string) (*Family, error) {
	if kind == "" {
		return nil, fmt.Errorf("workload: spec needs a kind (one of %s)", kindList())
	}
	f, ok := Builtin.Lookup(kind)
	if !ok {
		return nil, fmt.Errorf("workload: unknown scenario kind %q (one of %s)", kind, kindList())
	}
	return f, nil
}

// Kinds returns the builtin kinds in registration order.
func Kinds() []string { return Builtin.Kinds() }

func kindList() string { return strings.Join(Builtin.Kinds(), ", ") }

// ScenarioFor returns the standalone scenario of a spec: a fresh
// resource built per run and closed after — the reference pooled
// execution is checked against, and the path the batch runner and
// CLI use.
func ScenarioFor(s Spec, opts ...simd.Option) (Scenario, error) {
	norm, err := s.Normalized()
	if err != nil {
		return Scenario{}, err
	}
	f, _ := Builtin.Lookup(norm.Kind)
	return Scenario{Name: norm.Name(), Run: func(ctx context.Context) (ScenarioResult, error) {
		r := f.Build(norm, opts...)
		defer r.Close()
		return f.Run(ctx, norm, r)
	}}, nil
}

// DemoSpecs returns one small representative (already normalized)
// spec per registered kind, in registration order — the registry's
// smoke workload.
func DemoSpecs() []Spec {
	var out []Spec
	for _, f := range Builtin.Families() {
		norm, err := f.Demo().Normalized()
		if err != nil {
			panic(fmt.Sprintf("workload: demo spec of %q does not validate: %v", f.Kind, err))
		}
		out = append(out, norm)
	}
	return out
}

// CatalogRow is one scenario kind's catalog entry.
type CatalogRow struct {
	Kind     string
	Params   string
	Package  string
	PaperRef string
	Summary  string
}

// Catalog returns the registry's catalog rows in registration order.
func Catalog() []CatalogRow {
	var out []CatalogRow
	for _, f := range Builtin.Families() {
		out = append(out, CatalogRow{
			Kind:     f.Kind,
			Params:   f.Params,
			Package:  f.Package,
			PaperRef: f.PaperRef,
			Summary:  f.Summary,
		})
	}
	return out
}

// CatalogMarkdown renders the catalog as the README's scenario
// table; a facade test asserts the README copy matches, so the doc
// can never drift from the registry.
func CatalogMarkdown() string {
	out := "| kind | params | backing package | paper | workload |\n"
	out += "|------|--------|-----------------|-------|----------|\n"
	for _, row := range Catalog() {
		out += fmt.Sprintf("| `%s` | %s | `%s` | %s | %s |\n",
			row.Kind, row.Params, row.Package, row.PaperRef, row.Summary)
	}
	return out
}

// nullResource backs families that keep no per-run machine state
// (permutation routing builds its message table per run).
type nullResource struct{}

func (nullResource) Reset() {}
func (nullResource) Close() {}
