// Spec: the typed, JSON-serializable description of one scenario
// run — scenario kind plus machine shape plus parameters. A spec
// fully determines its result: all randomness derives from the
// explicit Seed through NewRand. The job service (internal/serve)
// admits specs verbatim; the scenario registry (registry.go) is the
// single place that validates, shapes, builds and runs them.
package workload

import (
	"fmt"
	"strings"
)

// Scenario kinds. Star-machine kinds (sort, broadcast, sweep,
// embedrect, pipeline) share one machine pool per n; shear uses a
// mesh pool per (rows, cols); faultroute and diagnostics share a
// bare star-graph pool per n; permroute needs no pooled state.
const (
	KindSort        = "sort"        // snake sort on the embedded mesh of S_n
	KindShear       = "shear"       // shear sort on a rows×cols mesh
	KindBroadcast   = "broadcast"   // greedy SIMD-B flood on S_n
	KindSweep       = "sweep"       // full mesh-unit-route sweep on S_n
	KindFaultRoute  = "faultroute"  // routing around random fault sets on S_n
	KindEmbedRect   = "embedrect"   // Atallah rectangular-mesh embedding + grouped unit-route sweep
	KindPermRoute   = "permroute"   // oblivious permutation routing with conflict accounting
	KindVirtual     = "virtual"     // D_{n+1}-on-S_n virtual snake sort (n+1 nodes per PE)
	KindDiagnostics = "diagnostics" // graphalg fault sweep: connectivity/diameter under vertex holes
	KindPipeline    = "pipeline"    // multi-phase chain embed → sort → broadcast on one machine
)

// MaxStarN bounds the star parameter a spec may request (S_8 =
// 40,320 PEs; the neighbor table alone is ~1.5 GB at n=10, so
// validation rejects anything larger instead of letting one request
// exhaust the process).
const MaxStarN = 8

// MaxMeshPEs bounds rows×cols for shear specs.
const MaxMeshPEs = 1 << 16

// MaxPermRouteN bounds permutation routing: every node sources one
// message, and each synchronous step scans all n! of them, so the
// cost grows much faster than a single machine workload.
const MaxPermRouteN = 7

// MaxVirtualN bounds the virtualized machine: a virtual snake sort
// runs (n+1)! odd-even phases over n! PEs.
const MaxVirtualN = 5

// MaxDiagnosticTrials bounds the fault-sweep repetition count.
const MaxDiagnosticTrials = 64

// MaxSweepTrials bounds sweep repetition: a sweep job runs trials
// full mesh-unit-route sweeps back to back — the service's
// long-running workload class (cancellation checkpoints fire before
// every unit route, so even the largest job aborts promptly).
const MaxSweepTrials = 1 << 20

// MaxPriority bounds the scheduling priority a spec may request
// (0 = default, MaxPriority = most urgent). The range is validated
// centrally in Normalized, before family dispatch — priority is a
// scheduling property, not a per-family one.
const MaxPriority = 9

// Spec describes one scenario run.
type Spec struct {
	Kind string `json:"kind"`
	// N is the star parameter for every star-shaped kind.
	N int `json:"n,omitempty"`
	// Rows, Cols shape the mesh for shear specs.
	Rows int `json:"rows,omitempty"`
	Cols int `json:"cols,omitempty"`
	// Dist names the key distribution for sort/shear/virtual/pipeline
	// (see Dists; empty means uniform).
	Dist string `json:"dist,omitempty"`
	// Seed drives every random draw of the run.
	Seed int64 `json:"seed,omitempty"`
	// Source is the broadcast origin PE (broadcast, pipeline).
	Source int `json:"source,omitempty"`
	// Faults and Pairs parameterize faultroute specs (faults ≤ n-2;
	// Pairs defaults to 1).
	Faults int `json:"faults,omitempty"`
	Pairs  int `json:"pairs,omitempty"`
	// D is the rectangular-mesh dimension count for embedrect and
	// pipeline (1 ≤ d ≤ n-1; defaults to 2).
	D int `json:"d,omitempty"`
	// Pattern names the permroute destination pattern (see
	// PermPatterns; empty means random).
	Pattern string `json:"pattern,omitempty"`
	// Holes parameterizes diagnostics specs: each trial deletes Holes
	// random vertices (≤ n-2, so the graph provably stays connected)
	// and measures reachability and eccentricity.
	Holes int `json:"holes,omitempty"`
	// Trials is the repetition count of diagnostics (fault-sweep
	// trials) and sweep (back-to-back full sweeps — the long-running
	// job class) specs. Defaults to 1.
	Trials int `json:"trials,omitempty"`
	// Priority orders jobs within one tenant's queue (0–MaxPriority,
	// higher first) and lets urgent submissions preempt long
	// lower-priority sweeps at their cancellation checkpoints. It does
	// not affect the result — only when the job runs.
	Priority int `json:"priority,omitempty"`
}

// Normalized validates the spec against its family and fills
// defaults, returning the canonical form services store and execute.
// The error is actionable: it names the offending field and the
// accepted range.
func (s Spec) Normalized() (Spec, error) {
	if s.Priority < 0 || s.Priority > MaxPriority {
		return s, fmt.Errorf("workload: priority %d out of range (want 0..%d)", s.Priority, MaxPriority)
	}
	f, err := FamilyOf(s.Kind)
	if err != nil {
		return s, err
	}
	return f.Normalize(s)
}

// Shape is the machine-pool key of the spec: specs with equal shapes
// run on interchangeable resources. The engine configuration is
// process-wide, so it is not part of the key. Unknown kinds shape to
// "invalid" (they never pass Normalized, so no pool is ever built
// for them).
func (s Spec) Shape() string {
	f, err := FamilyOf(s.Kind)
	if err != nil {
		return "invalid"
	}
	return f.Shape(s)
}

// Name renders the spec in the scenario naming scheme.
func (s Spec) Name() string {
	f, err := FamilyOf(s.Kind)
	if err != nil {
		return "invalid"
	}
	return f.Name(s)
}

func factorial(n int) int64 {
	f := int64(1)
	for i := 2; i <= n; i++ {
		f *= int64(i)
	}
	return f
}

// DistByName resolves a distribution name ("" means uniform).
func DistByName(name string) (Dist, error) {
	if name == "" {
		return Uniform, nil
	}
	for _, d := range Dists {
		if d.Name == name {
			return d.D, nil
		}
	}
	return 0, fmt.Errorf("workload: unknown distribution %q (want one of %s)", name, distNames())
}

func distNames() string {
	names := make([]string, len(Dists))
	for i, d := range Dists {
		names[i] = d.Name
	}
	return strings.Join(names, ", ")
}
