package workload

import (
	"testing"
)

func TestKeysDeterministic(t *testing.T) {
	a := Keys(Uniform, 100, 7)
	b := Keys(Uniform, 100, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed produced different keys")
		}
	}
	c := Keys(Uniform, 100, 8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatalf("different seeds produced identical keys")
	}
}

func TestKeysDistributions(t *testing.T) {
	n := 50
	rev := Keys(Reversed, n, 1)
	for i := range rev {
		if rev[i] != int64(n-1-i) {
			t.Fatalf("reversed wrong at %d", i)
		}
	}
	srt := Keys(Sorted, n, 1)
	for i := 1; i < n; i++ {
		if srt[i] < srt[i-1] {
			t.Fatalf("sorted not sorted")
		}
	}
	for _, v := range Keys(FewDistinct, n, 2) {
		if v < 0 || v > 3 {
			t.Fatalf("few-distinct out of range: %d", v)
		}
	}
	for _, v := range Keys(ZeroOne, n, 3) {
		if v != 0 && v != 1 {
			t.Fatalf("zero-one out of range: %d", v)
		}
	}
	for _, v := range Keys(Uniform, n, 4) {
		if v < 0 || v > int64(4*n) {
			t.Fatalf("uniform out of range: %d", v)
		}
	}
}

func TestKeysPanicsOnUnknownDist(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	Keys(Dist(99), 10, 1)
}

func TestDistsTableComplete(t *testing.T) {
	if len(Dists) != 5 {
		t.Fatalf("Dists has %d entries", len(Dists))
	}
	for _, d := range Dists {
		if d.Name == "" {
			t.Fatalf("unnamed distribution")
		}
		_ = Keys(d.D, 10, 1) // must not panic
	}
}

func TestPerms(t *testing.T) {
	ps := Perms(6, 20, 5)
	if len(ps) != 20 {
		t.Fatalf("count wrong")
	}
	for _, p := range ps {
		if !p.Valid() || p.N() != 6 {
			t.Fatalf("invalid perm %v", p)
		}
	}
}

func TestMeshPoints(t *testing.T) {
	pts := MeshPoints(6, 30, 6)
	for _, pt := range pts {
		if len(pt) != 5 {
			t.Fatalf("arity wrong")
		}
		for k := 1; k <= 5; k++ {
			if pt[k-1] < 0 || pt[k-1] > k {
				t.Fatalf("coordinate out of range: %v", pt)
			}
		}
	}
}

func TestRandomVertexMap(t *testing.T) {
	vm := RandomVertexMap(64, 9)
	seen := make([]bool, 64)
	for _, v := range vm {
		if v < 0 || v >= 64 || seen[v] {
			t.Fatalf("not a bijection")
		}
		seen[v] = true
	}
}
