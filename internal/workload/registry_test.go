package workload

import (
	"context"
	"strings"
	"testing"
)

// strip removes the wall-clock and name fields so results compare.
func strip(r ScenarioResult) ScenarioResult {
	r.Name = ""
	r.ElapsedNs = 0
	return r
}

func TestRegistryHoldsEveryKind(t *testing.T) {
	want := []string{
		KindSort, KindShear, KindBroadcast, KindSweep, KindFaultRoute,
		KindEmbedRect, KindPermRoute, KindVirtual, KindDiagnostics, KindPipeline,
	}
	got := Kinds()
	if len(got) != len(want) {
		t.Fatalf("registry has %d kinds, want %d: %v", len(got), len(want), got)
	}
	for i, k := range want {
		if got[i] != k {
			t.Fatalf("kind %d = %q, want %q (registration order is the catalog order)", i, got[i], k)
		}
		f, ok := Builtin.Lookup(k)
		if !ok {
			t.Fatalf("kind %q not registered", k)
		}
		if f.Summary == "" || f.Package == "" || f.PaperRef == "" || f.Params == "" {
			t.Errorf("kind %q is missing catalog metadata: %+v", k, f)
		}
	}
}

func TestFamilyOfErrorsAreActionable(t *testing.T) {
	if _, err := FamilyOf(""); err == nil || !strings.Contains(err.Error(), KindPipeline) {
		t.Fatalf("empty kind error should list the kinds, got %v", err)
	}
	if _, err := FamilyOf("nope"); err == nil || !strings.Contains(err.Error(), "nope") ||
		!strings.Contains(err.Error(), KindEmbedRect) {
		t.Fatalf("unknown kind error should name it and list the kinds, got %v", err)
	}
}

func TestDemoSpecsRunCleanAndDeterministic(t *testing.T) {
	for _, spec := range DemoSpecs() {
		sc, err := ScenarioFor(spec)
		if err != nil {
			t.Fatalf("%s: %v", spec.Kind, err)
		}
		first, err := sc.Run(context.Background())
		if err != nil {
			t.Fatalf("%s: %v", sc.Name, err)
		}
		if !first.OK {
			t.Errorf("%s: self-check failed: %+v", sc.Name, first)
		}
		if first.UnitRoutes <= 0 && spec.Kind != KindDiagnostics {
			t.Errorf("%s: reports no work: %+v", sc.Name, first)
		}
		again, err := sc.Run(context.Background())
		if err != nil {
			t.Fatalf("%s rerun: %v", sc.Name, err)
		}
		if strip(first) != strip(again) {
			t.Errorf("%s: same seed diverged: %+v != %+v", sc.Name, first, again)
		}
	}
}

// TestNewFamiliesSeedSensitivity: the seeded new families actually
// consume their seed (different seeds change the result), while the
// deterministic ones ignore it entirely.
func TestNewFamiliesSeedSensitivity(t *testing.T) {
	seeded := []Spec{
		{Kind: KindPermRoute, N: 5, Pattern: "random", Seed: 1},
		{Kind: KindDiagnostics, N: 5, Holes: 3, Trials: 4, Seed: 1},
		{Kind: KindVirtual, N: 4, Dist: "uniform", Seed: 1},
	}
	for _, spec := range seeded {
		a := runSpec(t, spec)
		spec2 := spec
		spec2.Seed = 99
		b := runSpec(t, spec2)
		if a.UnitRoutes == b.UnitRoutes && a.Conflicts == b.Conflicts {
			t.Logf("%s: seeds 1 and 99 happen to agree (%+v) — acceptable but suspicious", spec.Kind, a)
		}
	}
	det := Spec{Kind: KindEmbedRect, N: 5, D: 3, Seed: 7}
	det2 := det
	det2.Seed = 1234
	if runSpec(t, det) != runSpec(t, det2) {
		t.Errorf("embedrect consumed a seed it documents as unused")
	}
}

func runSpec(t *testing.T, s Spec) ScenarioResult {
	t.Helper()
	sc, err := ScenarioFor(s)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sc.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return strip(res)
}

// TestPooledParityAcrossFamilies reproduces the service's machine
// lifecycle by hand for every registered family: run a job on a
// resource, Reset it (the pool checkin contract), run the same spec
// again, and require the rerun to be bit-identical to a fresh-build
// run. For star-pool families the dirtying job is a different kind
// sharing the shape — exactly the cross-kind reuse per-shape pools
// perform.
func TestPooledParityAcrossFamilies(t *testing.T) {
	dirty := map[string]Spec{
		// star:N pool is shared by sort/broadcast/sweep/embedrect/pipeline.
		"star": {Kind: KindSweep},
	}
	for _, spec := range DemoSpecs() {
		f, _ := Builtin.Lookup(spec.Kind)

		fresh := f.Build(spec)
		want, err := f.Run(context.Background(), spec, fresh)
		fresh.Close()
		if err != nil {
			t.Fatalf("%s fresh: %v", spec.Kind, err)
		}

		reused := f.Build(spec)
		first := spec
		if strings.HasPrefix(f.Shape(spec), "star:") {
			d := dirty["star"]
			d.N = spec.N
			d, err = d.Normalized()
			if err != nil {
				t.Fatal(err)
			}
			first = d
		}
		df, _ := Builtin.Lookup(first.Kind)
		if _, err := df.Run(context.Background(), first, reused); err != nil {
			t.Fatalf("%s dirtying run: %v", spec.Kind, err)
		}
		reused.Reset()
		got, err := f.Run(context.Background(), spec, reused)
		reused.Close()
		if err != nil {
			t.Fatalf("%s pooled rerun: %v", spec.Kind, err)
		}
		if strip(got) != strip(want) {
			t.Errorf("%s: pooled rerun diverged from fresh build: %+v != %+v", spec.Kind, got, want)
		}
	}
}

func TestCatalogMatchesRegistry(t *testing.T) {
	md := CatalogMarkdown()
	for _, k := range Kinds() {
		if !strings.Contains(md, "| `"+k+"` |") {
			t.Errorf("catalog markdown is missing kind %q:\n%s", k, md)
		}
	}
	rows := Catalog()
	if len(rows) != len(Kinds()) {
		t.Fatalf("catalog has %d rows for %d kinds", len(rows), len(Kinds()))
	}
}
