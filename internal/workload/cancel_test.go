package workload

import (
	"context"
	"errors"
	"testing"

	"starmesh/internal/mesh"
	"starmesh/internal/meshsim"
	"starmesh/internal/star"
	"starmesh/internal/starsim"
	"starmesh/internal/virtual"
)

// TestRunnersHonorCancellation: every long-loop runner aborts on a
// pre-canceled context with ctx's error and OK=false, and the
// machine remains usable (Reset + rerun matches a fresh run) — the
// Reset-safety the service pools rely on after a mid-run cancel.
func TestRunnersHonorCancellation(t *testing.T) {
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	ctx := context.Background()

	sm := starsim.New(4)
	defer sm.Close()
	mm := meshsim.New(mesh.New(4, 4))
	defer mm.Close()
	vm := virtual.New(3)
	defer vm.Close()
	g := star.New(4)

	runs := []struct {
		name string
		run  func(c context.Context) (ScenarioResult, error)
	}{
		{"sort", func(c context.Context) (ScenarioResult, error) { return RunSortOn(c, sm, Uniform, NewRand(1)) }},
		{"sweep", func(c context.Context) (ScenarioResult, error) { return RunSweepOn(c, sm, 3) }},
		{"broadcast", func(c context.Context) (ScenarioResult, error) { return RunBroadcastOn(c, sm, 0) }},
		{"embedrect", func(c context.Context) (ScenarioResult, error) { return RunEmbedRectOn(c, sm, 2) }},
		{"pipeline", func(c context.Context) (ScenarioResult, error) {
			return RunPipelineOn(c, sm, 2, Uniform, 0, NewRand(1))
		}},
		{"shear", func(c context.Context) (ScenarioResult, error) { return RunShearOn(c, mm, Uniform, NewRand(1)) }},
		{"virtual", func(c context.Context) (ScenarioResult, error) { return RunVirtualOn(c, vm, Uniform, NewRand(1)) }},
		{"faultroute", func(c context.Context) (ScenarioResult, error) {
			return RunFaultRouteOn(c, g, 1, 4, NewRand(1))
		}},
		{"diagnostics", func(c context.Context) (ScenarioResult, error) {
			return RunDiagnosticsOn(c, g, 1, 4, NewRand(1))
		}},
		{"permroute", func(c context.Context) (ScenarioResult, error) { return RunPermRouteOn(c, 4, "random", 1) }},
	}
	for _, tc := range runs {
		res, err := tc.run(canceled)
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%s: pre-canceled ctx returned %v, want context.Canceled", tc.name, err)
			continue
		}
		if res.OK {
			t.Errorf("%s: canceled run claims OK: %+v", tc.name, res)
		}
	}

	// Reset clears whatever the aborted runs left behind: a machine
	// runner must reproduce the fresh-machine result after Reset.
	sm.Reset()
	got, err := RunSortOn(ctx, sm, Reversed, NewRand(9))
	if err != nil {
		t.Fatal(err)
	}
	fresh := starsim.New(4)
	defer fresh.Close()
	want, err := RunSortOn(ctx, fresh, Reversed, NewRand(9))
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("post-cancel Reset machine diverged: %+v != %+v", got, want)
	}
}

// TestSweepTrialsScaleTheWork pins the new long-running sweep knob:
// trials multiply the unit routes linearly and deterministically.
func TestSweepTrialsScaleTheWork(t *testing.T) {
	ctx := context.Background()
	sm := starsim.New(4)
	defer sm.Close()
	one, err := RunSweepOn(ctx, sm, 1)
	if err != nil {
		t.Fatal(err)
	}
	sm.Reset()
	three, err := RunSweepOn(ctx, sm, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !one.OK || !three.OK {
		t.Fatalf("sweeps not clean: %+v %+v", one, three)
	}
	if three.UnitRoutes != 3*one.UnitRoutes || one.UnitRoutes == 0 {
		t.Fatalf("trials=3 routed %d, want 3×%d", three.UnitRoutes, one.UnitRoutes)
	}
	// Normalization: trials defaults to 1 and bounds are enforced.
	norm, err := (Spec{Kind: KindSweep, N: 4}).Normalized()
	if err != nil || norm.Trials != 1 {
		t.Fatalf("sweep trials default: %+v, %v", norm, err)
	}
	if _, err := (Spec{Kind: KindSweep, N: 4, Trials: MaxSweepTrials + 1}).Normalized(); err == nil {
		t.Fatal("oversized trials accepted")
	}
}

// TestRunBatchCancellation: a canceled batch context aborts the
// remaining scenarios instead of running them to completion.
func TestRunBatchCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := RunBatch(ctx, StandardBatch(4, 1), 2)
	if len(res.Errors) == 0 {
		t.Fatalf("canceled batch reported no aborts: %+v", res)
	}
}
