// The built-in scenario families. Each Register call below is the
// ONE place a scenario kind is wired: validation, pool shape,
// construction, execution and naming all live here, and every layer
// above (job service, experiments, CLI, facade) dispatches through
// the registry.
package workload

import (
	"context"
	"fmt"

	"starmesh/internal/mesh"
	"starmesh/internal/meshsim"
	"starmesh/internal/simd"
	"starmesh/internal/star"
	"starmesh/internal/starsim"
	"starmesh/internal/virtual"
)

// graphResource adapts the stateless *star.Graph to the pool
// contract; pooling it amortizes the O(n!·n) node table.
type graphResource struct{ g *star.Graph }

func (graphResource) Reset() {}
func (graphResource) Close() {}

// starN validates the star parameter of a spec.
func starN(s Spec) error {
	if s.N < 2 || s.N > MaxStarN {
		return fmt.Errorf("%s spec needs n in [2,%d], got %d", s.Kind, MaxStarN, s.N)
	}
	return nil
}

// normDist validates the key distribution and fills the uniform
// default.
func normDist(s Spec) (Spec, error) {
	if _, err := DistByName(s.Dist); err != nil {
		return s, err
	}
	if s.Dist == "" {
		s.Dist = "uniform"
	}
	return s, nil
}

// mustDist resolves a distribution already validated by Normalize.
func mustDist(name string) Dist {
	d, err := DistByName(name)
	if err != nil {
		panic(err)
	}
	return d
}

// buildStar, buildStarGraph: the shared constructors of the
// star-shaped pools.
func buildStar(s Spec, opts ...simd.Option) Resource   { return starsim.New(s.N, opts...) }
func buildStarGraph(s Spec, _ ...simd.Option) Resource { return graphResource{g: star.New(s.N)} }

func starShape(s Spec) string      { return fmt.Sprintf("star:%d", s.N) }
func starGraphShape(s Spec) string { return fmt.Sprintf("stargraph:%d", s.N) }

func builtinRegistry() *Registry {
	r := NewRegistry()

	r.Register(Family{
		Kind:     KindSort,
		Summary:  "snake sort on the embedded mesh D_n of S_n",
		Package:  "internal/sorting",
		PaperRef: "§5, Theorem 6",
		Params:   "n, dist, seed",
		Normalize: func(s Spec) (Spec, error) {
			if err := starN(s); err != nil {
				return s, err
			}
			return normDist(s)
		},
		Shape: starShape,
		Build: buildStar,
		Run: func(ctx context.Context, s Spec, r Resource) (ScenarioResult, error) {
			return RunSortOn(ctx, r.(*starsim.Machine), mustDist(s.Dist), NewRand(s.Seed))
		},
		Name: func(s Spec) string {
			return fmt.Sprintf("sort-star-n%d-%s-seed%d", s.N, s.Dist, s.Seed)
		},
		Demo: func() Spec { return Spec{Kind: KindSort, N: 4, Dist: "reversed", Seed: 1} },
	})

	r.Register(Family{
		Kind:     KindShear,
		Summary:  "shear sort on a rows×cols mesh machine",
		Package:  "internal/sorting",
		PaperRef: "§5 (mesh baseline)",
		Params:   "rows, cols, dist, seed",
		Normalize: func(s Spec) (Spec, error) {
			if s.Rows < 1 || s.Cols < 1 || s.Rows*s.Cols < 2 || s.Rows*s.Cols > MaxMeshPEs {
				return s, fmt.Errorf("shear spec needs 2 ≤ rows×cols ≤ %d, got %d×%d", MaxMeshPEs, s.Rows, s.Cols)
			}
			return normDist(s)
		},
		Shape: func(s Spec) string { return fmt.Sprintf("mesh:%dx%d", s.Rows, s.Cols) },
		Build: func(s Spec, opts ...simd.Option) Resource {
			return meshsim.New(mesh.New(s.Rows, s.Cols), opts...)
		},
		Run: func(ctx context.Context, s Spec, r Resource) (ScenarioResult, error) {
			return RunShearOn(ctx, r.(*meshsim.Machine), mustDist(s.Dist), NewRand(s.Seed))
		},
		Name: func(s Spec) string {
			return fmt.Sprintf("shear-mesh-%dx%d-%s-seed%d", s.Rows, s.Cols, s.Dist, s.Seed)
		},
		Demo: func() Spec { return Spec{Kind: KindShear, Rows: 8, Cols: 8, Dist: "reversed", Seed: 1} },
	})

	r.Register(Family{
		Kind:     KindBroadcast,
		Summary:  "greedy SIMD-B flood of one value across S_n",
		Package:  "internal/starsim",
		PaperRef: "§2 (broadcast bounds)",
		Params:   "n, source",
		Normalize: func(s Spec) (Spec, error) {
			if err := starN(s); err != nil {
				return s, err
			}
			if s.Source < 0 || int64(s.Source) >= factorial(s.N) {
				return s, fmt.Errorf("broadcast source %d out of range [0,%d)", s.Source, factorial(s.N))
			}
			return s, nil
		},
		Shape: starShape,
		Build: buildStar,
		Run: func(ctx context.Context, s Spec, r Resource) (ScenarioResult, error) {
			return RunBroadcastOn(ctx, r.(*starsim.Machine), s.Source)
		},
		Name: func(s Spec) string {
			return fmt.Sprintf("broadcast-star-n%d-src%d", s.N, s.Source)
		},
		Demo: func() Spec { return Spec{Kind: KindBroadcast, N: 4, Source: 0} },
	})

	r.Register(Family{
		Kind:     KindSweep,
		Summary:  "full mesh-unit-route sweep (every dimension, both directions)",
		Package:  "internal/starsim",
		PaperRef: "Theorem 6",
		Params:   "n, trials",
		Normalize: func(s Spec) (Spec, error) {
			if err := starN(s); err != nil {
				return s, err
			}
			if s.Trials == 0 {
				s.Trials = 1
			}
			if s.Trials < 1 || s.Trials > MaxSweepTrials {
				return s, fmt.Errorf("sweep needs trials in [1,%d], got %d", MaxSweepTrials, s.Trials)
			}
			return s, nil
		},
		Shape: starShape,
		Build: buildStar,
		Run: func(ctx context.Context, s Spec, r Resource) (ScenarioResult, error) {
			return RunSweepOn(ctx, r.(*starsim.Machine), s.Trials)
		},
		Name: func(s Spec) string { return fmt.Sprintf("sweep-star-n%d-t%d", s.N, s.Trials) },
		Demo: func() Spec { return Spec{Kind: KindSweep, N: 4} },
	})

	r.Register(Family{
		Kind:     KindFaultRoute,
		Summary:  "point-to-point routing around random fault sets",
		Package:  "internal/star",
		PaperRef: "§2 (maximal fault tolerance)",
		Params:   "n, faults, pairs, seed",
		Normalize: func(s Spec) (Spec, error) {
			if err := starN(s); err != nil {
				return s, err
			}
			if s.Faults < 0 || s.Faults > s.N-2 {
				return s, fmt.Errorf("faultroute survives at most n-2 = %d faults, got %d", s.N-2, s.Faults)
			}
			if s.Pairs == 0 {
				s.Pairs = 1
			}
			if s.Pairs < 1 {
				return s, fmt.Errorf("faultroute needs pairs ≥ 1, got %d", s.Pairs)
			}
			return s, nil
		},
		Shape: starGraphShape,
		Build: buildStarGraph,
		Run: func(ctx context.Context, s Spec, r Resource) (ScenarioResult, error) {
			return RunFaultRouteOn(ctx, r.(graphResource).g, s.Faults, s.Pairs, NewRand(s.Seed))
		},
		Name: func(s Spec) string {
			return fmt.Sprintf("faultroute-star-n%d-f%d-p%d-seed%d", s.N, s.Faults, s.Pairs, s.Seed)
		},
		Demo: func() Spec { return Spec{Kind: KindFaultRoute, N: 4, Faults: 2, Pairs: 4, Seed: 1} },
	})

	r.Register(Family{
		Kind:     KindEmbedRect,
		Summary:  "Atallah rectangular mesh l_1×…×l_d on S_n + verified grouped unit-route sweep",
		Package:  "internal/atallah, internal/meshops",
		PaperRef: "Appendix, Theorems 7–8",
		Params:   "n, d",
		Normalize: func(s Spec) (Spec, error) {
			if err := starN(s); err != nil {
				return s, err
			}
			if s.D == 0 {
				s.D = 2
			}
			if s.D < 1 || s.D > s.N-1 {
				return s, fmt.Errorf("embedrect needs d in [1,%d] for S_%d, got %d", s.N-1, s.N, s.D)
			}
			return s, nil
		},
		Shape: starShape,
		Build: buildStar,
		Run: func(ctx context.Context, s Spec, r Resource) (ScenarioResult, error) {
			return RunEmbedRectOn(ctx, r.(*starsim.Machine), s.D)
		},
		Name: func(s Spec) string { return fmt.Sprintf("embedrect-star-n%d-d%d", s.N, s.D) },
		Demo: func() Spec { return Spec{Kind: KindEmbedRect, N: 5, D: 2} },
	})

	r.Register(Family{
		Kind:     KindPermRoute,
		Summary:  "oblivious permutation routing (greedy or Valiant) with queueing accounting",
		Package:  "internal/permroute",
		PaperRef: "Theorem 6 contrast (arbitrary vs structured traffic)",
		Params:   "n, pattern, seed",
		Normalize: func(s Spec) (Spec, error) {
			if s.N < 2 || s.N > MaxPermRouteN {
				return s, fmt.Errorf("permroute spec needs n in [2,%d] (every node sources a message), got %d", MaxPermRouteN, s.N)
			}
			if s.Pattern == "" {
				s.Pattern = "random"
			}
			ok := false
			for _, p := range PermPatterns {
				ok = ok || p == s.Pattern
			}
			if !ok {
				return s, fmt.Errorf("permroute pattern %q unknown (want one of %v)", s.Pattern, PermPatterns)
			}
			return s, nil
		},
		Shape: func(s Spec) string { return "none" },
		Build: func(s Spec, _ ...simd.Option) Resource { return nullResource{} },
		Run: func(ctx context.Context, s Spec, _ Resource) (ScenarioResult, error) {
			return RunPermRouteOn(ctx, s.N, s.Pattern, s.Seed)
		},
		Name: func(s Spec) string {
			return fmt.Sprintf("permroute-star-n%d-%s-seed%d", s.N, s.Pattern, s.Seed)
		},
		Demo: func() Spec { return Spec{Kind: KindPermRoute, N: 4, Pattern: "random", Seed: 1} },
	})

	r.Register(Family{
		Kind:     KindVirtual,
		Summary:  "virtual snake sort: (n+1)! keys of D_{n+1} on the n! PEs of S_n",
		Package:  "internal/virtual",
		PaperRef: "§4 extension (processor virtualization)",
		Params:   "n, dist, seed",
		Normalize: func(s Spec) (Spec, error) {
			if s.N < 2 || s.N > MaxVirtualN {
				return s, fmt.Errorf("virtual spec needs n in [2,%d] (the sort runs (n+1)! phases), got %d", MaxVirtualN, s.N)
			}
			return normDist(s)
		},
		Shape: func(s Spec) string { return fmt.Sprintf("virtual:%d", s.N) },
		Build: func(s Spec, opts ...simd.Option) Resource { return virtual.New(s.N, opts...) },
		Run: func(ctx context.Context, s Spec, r Resource) (ScenarioResult, error) {
			return RunVirtualOn(ctx, r.(*virtual.Machine), mustDist(s.Dist), NewRand(s.Seed))
		},
		Name: func(s Spec) string {
			return fmt.Sprintf("virtual-star-n%d-%s-seed%d", s.N, s.Dist, s.Seed)
		},
		Demo: func() Spec { return Spec{Kind: KindVirtual, N: 3, Dist: "uniform", Seed: 1} },
	})

	r.Register(Family{
		Kind:     KindDiagnostics,
		Summary:  "fault sweep: reachability and eccentricity under random vertex holes",
		Package:  "internal/graphalg",
		PaperRef: "§2 ((n-1)-connectivity)",
		Params:   "n, holes, trials, seed",
		Normalize: func(s Spec) (Spec, error) {
			if err := starN(s); err != nil {
				return s, err
			}
			if s.Holes < 0 || s.Holes > s.N-2 {
				return s, fmt.Errorf("diagnostics guarantees connectivity only for holes in [0,n-2] = [0,%d], got %d", s.N-2, s.Holes)
			}
			if s.Trials == 0 {
				s.Trials = 1
			}
			if s.Trials < 1 || s.Trials > MaxDiagnosticTrials {
				return s, fmt.Errorf("diagnostics needs trials in [1,%d], got %d", MaxDiagnosticTrials, s.Trials)
			}
			return s, nil
		},
		Shape: starGraphShape,
		Build: buildStarGraph,
		Run: func(ctx context.Context, s Spec, r Resource) (ScenarioResult, error) {
			return RunDiagnosticsOn(ctx, r.(graphResource).g, s.Holes, s.Trials, NewRand(s.Seed))
		},
		Name: func(s Spec) string {
			return fmt.Sprintf("diagnostics-star-n%d-h%d-t%d-seed%d", s.N, s.Holes, s.Trials, s.Seed)
		},
		Demo: func() Spec { return Spec{Kind: KindDiagnostics, N: 5, Holes: 3, Trials: 2, Seed: 1} },
	})

	r.Register(Family{
		Kind:     KindPipeline,
		Summary:  "multi-phase chain embedrect → sort → broadcast on ONE machine, Reset between phases",
		Package:  "internal/workload",
		PaperRef: "§5 composition",
		Params:   "n, d, dist, seed, source",
		Normalize: func(s Spec) (Spec, error) {
			if err := starN(s); err != nil {
				return s, err
			}
			if s.D == 0 {
				s.D = 2
			}
			if s.D < 1 || s.D > s.N-1 {
				return s, fmt.Errorf("pipeline needs d in [1,%d] for S_%d, got %d", s.N-1, s.N, s.D)
			}
			if s.Source < 0 || int64(s.Source) >= factorial(s.N) {
				return s, fmt.Errorf("pipeline broadcast source %d out of range [0,%d)", s.Source, factorial(s.N))
			}
			return normDist(s)
		},
		Shape: starShape,
		Build: buildStar,
		Run: func(ctx context.Context, s Spec, r Resource) (ScenarioResult, error) {
			return RunPipelineOn(ctx, r.(*starsim.Machine), s.D, mustDist(s.Dist), s.Source, NewRand(s.Seed))
		},
		Name: func(s Spec) string {
			return fmt.Sprintf("pipeline-star-n%d-d%d-%s-seed%d-src%d", s.N, s.D, s.Dist, s.Seed, s.Source)
		},
		Demo: func() Spec { return Spec{Kind: KindPipeline, N: 4, D: 2, Dist: "uniform", Seed: 1, Source: 0} },
	})

	return r
}
