package workload

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"starmesh/internal/mesh"
	"starmesh/internal/meshsim"
	"starmesh/internal/simd"
	"starmesh/internal/star"
	"starmesh/internal/starsim"
)

// stripTiming zeroes the wall-clock fields so runs can be compared.
func stripTiming(b BatchResult) BatchResult {
	b.ElapsedNs = 0
	b.Workers = 0
	out := append([]ScenarioResult(nil), b.Scenarios...)
	for i := range out {
		out[i].ElapsedNs = 0
	}
	b.Scenarios = out
	return b
}

func TestStandardBatchRunsCleanAndDeterministic(t *testing.T) {
	batch := StandardBatch(4, 7)
	one := RunBatch(context.Background(), batch, 1)
	if len(one.Errors) != 0 {
		t.Fatalf("batch errors: %v", one.Errors)
	}
	for _, sc := range one.Scenarios {
		if !sc.OK {
			t.Errorf("scenario %s not ok: %+v", sc.Name, sc)
		}
		if sc.UnitRoutes <= 0 {
			t.Errorf("scenario %s reports no work: %+v", sc.Name, sc)
		}
	}
	for _, workers := range []int{2, 5, 0} {
		many := RunBatch(context.Background(), StandardBatch(4, 7), workers)
		if len(many.Errors) != 0 {
			t.Fatalf("workers=%d batch errors: %v", workers, many.Errors)
		}
		a, b := stripTiming(one), stripTiming(many)
		if len(a.Scenarios) != len(b.Scenarios) {
			t.Fatalf("workers=%d: scenario count diverged", workers)
		}
		for i := range a.Scenarios {
			if a.Scenarios[i] != b.Scenarios[i] {
				t.Errorf("workers=%d scenario %d: %+v != %+v",
					workers, i, b.Scenarios[i], a.Scenarios[i])
			}
		}
	}
}

func TestStandardBatchParallelEngineMatches(t *testing.T) {
	seqBatch := RunBatch(context.Background(), StandardBatch(4, 11), 2)
	parBatch := RunBatch(context.Background(), StandardBatch(4, 11, simd.WithExecutor(simd.Parallel(3))), 2)
	if len(parBatch.Errors) != 0 {
		t.Fatalf("parallel-engine batch errors: %v", parBatch.Errors)
	}
	a, b := stripTiming(seqBatch), stripTiming(parBatch)
	for i := range a.Scenarios {
		if a.Scenarios[i] != b.Scenarios[i] {
			t.Errorf("scenario %d diverged under parallel engine: %+v != %+v",
				i, b.Scenarios[i], a.Scenarios[i])
		}
	}
}

func TestRunBatchCollectsErrors(t *testing.T) {
	boom := Scenario{Name: "boom", Run: func(context.Context) (ScenarioResult, error) {
		return ScenarioResult{}, errors.New("deliberate failure")
	}}
	res := RunBatch(context.Background(), []Scenario{BroadcastScenario(3, 0), boom}, 2)
	if len(res.Errors) != 1 {
		t.Fatalf("errors = %v, want exactly one", res.Errors)
	}
	if res.Scenarios[0].Name != "broadcast-star-n3-src0" || !res.Scenarios[0].OK {
		t.Errorf("healthy scenario result corrupted: %+v", res.Scenarios[0])
	}
}

func TestBenchRecordWriteJSON(t *testing.T) {
	rec := BenchRecord{
		Benchmark:          "engine-test",
		Timestamp:          "2026-01-01T00:00:00Z",
		GoMaxProcs:         1,
		N:                  8,
		PEs:                40320,
		Reps:               3,
		BaselineNs:         300,
		SequentialNs:       100,
		ParallelNs:         100,
		SpeedupEngine:      3.0,
		SpeedupParallel:    1.0,
		HostCPUs:           1,
		ReplaySequentialNs: 90,
		ReplayScaling: []ScalingPoint{
			{Procs: 1, ReplayNs: 90, Speedup: 1.0},
			{Procs: 2, ReplayNs: 50, Speedup: 1.8},
		},
	}
	path := filepath.Join(t.TempDir(), "BENCH_engine.json")
	if err := rec.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back BenchRecord
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, rec) {
		t.Errorf("round trip: %+v != %+v", back, rec)
	}
}

// TestRunnersMatchScenarios pins the refactoring contract: a Run*On
// call on a fresh machine with an explicit rand stream produces
// exactly what the corresponding Scenario (seed-keyed) produces —
// the property the job service's pooled execution relies on.
func TestRunnersMatchScenarios(t *testing.T) {
	const n, seed = 4, 99
	run := func(sc Scenario) ScenarioResult {
		res, err := sc.Run(context.Background())
		if err != nil {
			t.Fatalf("%s: %v", sc.Name, err)
		}
		return res
	}

	sm := starsim.New(n)
	defer sm.Close()
	got, err := RunSortOn(context.Background(), sm, Uniform, NewRand(seed))
	if err != nil {
		t.Fatal(err)
	}
	if want := run(SortScenario(n, Uniform, seed)); got != want {
		t.Fatalf("RunSortOn diverged: %+v != %+v", got, want)
	}

	mm := meshsim.New(mesh.New(8, 8))
	defer mm.Close()
	got, err = RunShearOn(context.Background(), mm, Reversed, NewRand(seed))
	if err != nil {
		t.Fatal(err)
	}
	if want := run(ShearScenario(8, 8, Reversed, seed)); got != want {
		t.Fatalf("RunShearOn diverged: %+v != %+v", got, want)
	}

	g := star.New(n)
	got, err = RunFaultRouteOn(context.Background(), g, n-2, 8, NewRand(seed))
	if err != nil {
		t.Fatal(err)
	}
	if want := run(FaultRouteScenario(n, n-2, 8, seed)); got != want {
		t.Fatalf("RunFaultRouteOn diverged: %+v != %+v", got, want)
	}

	sweep := run(SweepScenario(n))
	if !sweep.OK || sweep.UnitRoutes == 0 {
		t.Fatalf("sweep scenario reported no clean work: %+v", sweep)
	}
}
