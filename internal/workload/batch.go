// Batch scenario runner: executes many independent machine
// instances concurrently — the large-batch evaluation mode the
// engine exists for. Each Scenario builds its own machine (so
// instances share nothing and scale across workers), runs a
// workload, self-checks the result and reports unit-route costs.
// The per-scenario results are deterministic regardless of worker
// count; only the wall-clock changes.
package workload

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"time"

	"starmesh/internal/meshsim"
	"starmesh/internal/simd"
	"starmesh/internal/sorting"
	"starmesh/internal/star"
	"starmesh/internal/starsim"
)

// Scenario is one independently runnable workload instance. Run
// honors context cancellation at the runners' cooperative
// checkpoints, returning the partial result with ctx's error.
type Scenario struct {
	Name string
	Run  func(context.Context) (ScenarioResult, error)
}

// ScenarioResult reports one scenario's cost and self-check outcome.
type ScenarioResult struct {
	Name       string `json:"name"`
	UnitRoutes int    `json:"unit_routes"`
	Conflicts  int    `json:"conflicts"`
	OK         bool   `json:"ok"`
	ElapsedNs  int64  `json:"elapsed_ns"`
}

// BatchResult aggregates a concurrent batch run.
type BatchResult struct {
	Workers   int              `json:"workers"`
	ElapsedNs int64            `json:"elapsed_ns"`
	Scenarios []ScenarioResult `json:"scenarios"`
	Errors    []string         `json:"errors,omitempty"`
}

// RunBatch executes the scenarios on a pool of the given number of
// workers (<= 0 selects GOMAXPROCS). Results keep the input order;
// failures are collected, not fatal. Canceling ctx aborts the
// in-flight scenarios at their next checkpoint and skips the rest.
func RunBatch(ctx context.Context, scenarios []Scenario, workers int) BatchResult {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(scenarios) {
		workers = len(scenarios)
	}
	if workers < 1 {
		workers = 1
	}
	results := make([]ScenarioResult, len(scenarios))
	errs := make([]error, len(scenarios))
	jobs := make(chan int)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				sc := scenarios[i]
				t0 := time.Now()
				res, err := sc.Run(ctx)
				res.Name = sc.Name
				res.ElapsedNs = time.Since(t0).Nanoseconds()
				results[i] = res
				errs[i] = err
			}
		}()
	}
	for i := range scenarios {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	out := BatchResult{
		Workers:   workers,
		ElapsedNs: time.Since(start).Nanoseconds(),
		Scenarios: results,
	}
	for i, err := range errs {
		if err != nil {
			out.Errors = append(out.Errors, fmt.Sprintf("%s: %v", scenarios[i].Name, err))
		}
	}
	return out
}

// The Run*On functions execute one scenario on a caller-supplied
// machine, drawing all randomness from an explicit *rand.Rand. They
// are the single implementation shared by the standalone Scenario
// constructors below (which build a fresh machine per run) and the
// job service's pooled execution (internal/serve, which checks
// machines out of per-shape pools) — so a pooled run is bit-identical
// to a standalone run of the same seed by construction. Each runner
// assumes post-construction machine state (zero registers, zero
// stats): exactly what a fresh machine or a Reset pooled machine
// provides.
//
// Every runner with a long loop checks its context between
// iterations (a phase, a unit route, a trial): on cancellation it
// returns ctx's error plus the partial result accumulated so far,
// with OK forced false. The machine is left mid-workload but
// Reset-safe — registers and stats are exactly what Reset clears.

// canceledPartial shapes the partial result a runner reports when its
// context fires mid-run.
func canceledPartial(ctx context.Context, res ScenarioResult) (ScenarioResult, error) {
	res.OK = false
	return res, ctx.Err()
}

// RunSortOn snake-sorts keys of the given distribution on a star
// machine through the paper's embedding. The sort checks ctx once
// per odd-even transposition phase.
func RunSortOn(ctx context.Context, sm *starsim.Machine, d Dist, rng *rand.Rand) (ScenarioResult, error) {
	keys := KeysRand(d, sm.Size(), rng)
	sm.EnsureReg("K")
	sm.Set("K", func(pe int) int64 { return keys[pe] })
	res, err := sorting.SnakeSortStarCtx(ctx, sm, "K", sm.MeshIDs())
	if err != nil {
		return canceledPartial(ctx, ScenarioResult{
			UnitRoutes: res.UnitRoutes,
			Conflicts:  res.Conflicts,
		})
	}
	if !res.Sorted {
		return ScenarioResult{}, fmt.Errorf("snake sort left keys unsorted")
	}
	return ScenarioResult{
		UnitRoutes: res.UnitRoutes,
		Conflicts:  res.Conflicts,
		OK:         res.Sorted && res.Conflicts == 0,
	}, nil
}

// RunShearOn shear-sorts keys of the given distribution on a 2-D
// mesh machine, checking ctx once per compare-exchange phase.
func RunShearOn(ctx context.Context, mm *meshsim.Machine, d Dist, rng *rand.Rand) (ScenarioResult, error) {
	keys := KeysRand(d, mm.Size(), rng)
	mm.EnsureReg("K")
	mm.Set("K", func(pe int) int64 { return keys[pe] })
	res, err := sorting.ShearSort2DCtx(ctx, mm, "K")
	if err != nil {
		return canceledPartial(ctx, ScenarioResult{
			UnitRoutes: res.UnitRoutes,
			Conflicts:  res.Conflicts,
		})
	}
	if !res.Sorted {
		return ScenarioResult{}, fmt.Errorf("shear sort left keys unsorted")
	}
	return ScenarioResult{
		UnitRoutes: res.UnitRoutes,
		Conflicts:  res.Conflicts,
		OK:         res.Sorted && res.Conflicts == 0,
	}, nil
}

// RunBroadcastOn floods one value from the given source PE across a
// star machine and checks every PE received it. The conflict count
// covers only this broadcast (stats are diffed), so the runner is
// exact on reused machines too. A broadcast is O(n log n) rounds —
// short — so ctx is checked only once up front.
func RunBroadcastOn(ctx context.Context, sm *starsim.Machine, source int) (ScenarioResult, error) {
	if err := ctx.Err(); err != nil {
		return ScenarioResult{}, err
	}
	if source < 0 || source >= sm.Size() {
		return ScenarioResult{}, fmt.Errorf("broadcast source %d out of range [0,%d)", source, sm.Size())
	}
	sm.EnsureReg("V")
	sm.EnsureReg("W")
	const payload = 42
	sm.Reg("V")[source] = payload
	before := sm.Stats()
	routes := sm.Broadcast("V", "W", source)
	for pe, v := range sm.Reg("W") {
		if v != payload {
			return ScenarioResult{}, fmt.Errorf("PE %d missed the broadcast (got %d)", pe, v)
		}
	}
	conflicts := sm.Stats().ReceiveConflicts - before.ReceiveConflicts
	return ScenarioResult{
		UnitRoutes: routes,
		Conflicts:  conflicts,
		OK:         conflicts == 0,
	}, nil
}

// RunSweepOn repeats the full mesh-unit-route sweep — every
// dimension, both directions — the given number of times on a star
// machine and reports the star unit routes it cost. trials ≥ 1
// scales the job's length (the service's long-running workload); the
// context is checked before every unit route, so cancellation aborts
// within one route's latency.
func RunSweepOn(ctx context.Context, sm *starsim.Machine, trials int) (ScenarioResult, error) {
	if trials < 1 {
		trials = 1
	}
	sm.EnsureReg("V")
	sm.EnsureReg("W")
	sm.Set("V", func(pe int) int64 { return int64(pe) })
	before := sm.Stats()
	partial := func() ScenarioResult {
		after := sm.Stats()
		conflicts := after.ReceiveConflicts - before.ReceiveConflicts
		return ScenarioResult{
			UnitRoutes: after.UnitRoutes - before.UnitRoutes,
			Conflicts:  conflicts,
			OK:         conflicts == 0,
		}
	}
	for t := 0; t < trials; t++ {
		for k := 1; k <= sm.N-1; k++ {
			for _, dir := range []int{+1, -1} {
				if ctx.Err() != nil {
					return canceledPartial(ctx, partial())
				}
				sm.MeshUnitRoute("V", "W", k, dir)
			}
		}
	}
	return partial(), nil
}

// RunFaultRouteOn routes the given number of random source/target
// pairs through the star graph while avoiding random fault sets of
// the given size (at most n-2, so a path always exists). The
// reported unit routes are the total hops across all pairs; ctx is
// checked once per pair.
func RunFaultRouteOn(ctx context.Context, g *star.Graph, faults, pairs int, rng *rand.Rand) (ScenarioResult, error) {
	if faults > g.N()-2 {
		return ScenarioResult{}, fmt.Errorf("faults %d exceed the survivable n-2 = %d", faults, g.N()-2)
	}
	hops := 0
	for i := 0; i < pairs; i++ {
		if ctx.Err() != nil {
			return canceledPartial(ctx, ScenarioResult{UnitRoutes: hops})
		}
		faulty := make(map[int]bool, faults)
		for len(faulty) < faults {
			faulty[rng.Intn(g.Order())] = true
		}
		src := rng.Intn(g.Order())
		for faulty[src] {
			src = rng.Intn(g.Order())
		}
		dst := rng.Intn(g.Order())
		for faulty[dst] {
			dst = rng.Intn(g.Order())
		}
		path := g.RouteAvoiding(g.Node(src), g.Node(dst), faulty)
		if path == nil {
			return ScenarioResult{}, fmt.Errorf("no healthy route from %d to %d around %d faults", src, dst, faults)
		}
		hops += len(path) - 1
	}
	return ScenarioResult{UnitRoutes: hops, OK: true}, nil
}

// The named scenario constructors are thin registry dispatches:
// each builds the canonical Spec and asks ScenarioFor for the
// standalone (fresh machine per run) scenario. mustScenario panics
// on validation errors — these constructors are programmatic wiring,
// not input handling; callers with untrusted parameters go through
// ScenarioFor and handle the error.
func mustScenario(s Spec, opts ...simd.Option) Scenario {
	sc, err := ScenarioFor(s, opts...)
	if err != nil {
		panic(fmt.Sprintf("workload: %v", err))
	}
	return sc
}

// SortScenario snake-sorts n! keys of the given distribution on the
// star machine S_n through the paper's embedding.
func SortScenario(n int, d Dist, seed int64, opts ...simd.Option) Scenario {
	return mustScenario(Spec{Kind: KindSort, N: n, Dist: distName(d), Seed: seed}, opts...)
}

// ShearScenario shear-sorts a rows×cols mesh machine.
func ShearScenario(rows, cols int, d Dist, seed int64, opts ...simd.Option) Scenario {
	return mustScenario(Spec{Kind: KindShear, Rows: rows, Cols: cols, Dist: distName(d), Seed: seed}, opts...)
}

// BroadcastScenario floods one value from the given source PE across
// the star machine S_n and checks every PE received it.
func BroadcastScenario(n, source int, opts ...simd.Option) Scenario {
	return mustScenario(Spec{Kind: KindBroadcast, N: n, Source: source}, opts...)
}

// SweepScenario drives the full mesh-unit-route sweep on S_n.
func SweepScenario(n int, opts ...simd.Option) Scenario {
	return mustScenario(Spec{Kind: KindSweep, N: n}, opts...)
}

// FaultRouteScenario routes the given number of random source/target
// pairs through S_n while avoiding a random set of faulty nodes
// (at most n-2, so a path always exists). The reported unit routes
// are the total hops across all pairs.
func FaultRouteScenario(n, faults, pairs int, seed int64) Scenario {
	return mustScenario(Spec{Kind: KindFaultRoute, N: n, Faults: faults, Pairs: pairs, Seed: seed})
}

// EmbedRectScenario sweeps verified grouped unit routes over the
// appendix's d-dimensional rectangular mesh realized on S_n.
func EmbedRectScenario(n, d int, opts ...simd.Option) Scenario {
	return mustScenario(Spec{Kind: KindEmbedRect, N: n, D: d}, opts...)
}

// PermRouteScenario routes full permutation traffic of the given
// pattern obliviously on S_n.
func PermRouteScenario(n int, pattern string, seed int64) Scenario {
	return mustScenario(Spec{Kind: KindPermRoute, N: n, Pattern: pattern, Seed: seed})
}

// VirtualScenario snake-sorts (n+1)! keys on the virtualized
// machine D_{n+1}-on-S_n.
func VirtualScenario(n int, d Dist, seed int64, opts ...simd.Option) Scenario {
	return mustScenario(Spec{Kind: KindVirtual, N: n, Dist: distName(d), Seed: seed}, opts...)
}

// DiagnosticsScenario sweeps random vertex-hole patterns over S_n
// and measures reachability and eccentricity.
func DiagnosticsScenario(n, holes, trials int, seed int64) Scenario {
	return mustScenario(Spec{Kind: KindDiagnostics, N: n, Holes: holes, Trials: trials, Seed: seed})
}

// PipelineScenario chains embedrect → sort → broadcast on one star
// machine, Reset between phases.
func PipelineScenario(n, d int, dist Dist, seed int64, source int, opts ...simd.Option) Scenario {
	return mustScenario(Spec{Kind: KindPipeline, N: n, D: d, Dist: distName(dist), Seed: seed, Source: source}, opts...)
}

// StandardBatch assembles a representative mixed batch spanning
// every registered scenario family: snake sorts across
// distributions, shear sorts, broadcasts, fault routing, and the
// embedrect/permroute/virtual/diagnostics/pipeline families.
func StandardBatch(n int, seed int64, opts ...simd.Option) []Scenario {
	var scs []Scenario
	for _, d := range Dists {
		scs = append(scs, SortScenario(n, d.D, seed, opts...))
	}
	vn := n
	if vn > 4 {
		vn = 4 // the virtual sort runs (n+1)! phases; keep the mixed batch snappy
	}
	pn := n
	if pn > MaxPermRouteN {
		pn = MaxPermRouteN
	}
	ed := 2
	if ed > n-1 {
		ed = n - 1 // embedrect/pipeline need d ≤ n-1 (S_2 only factorizes to d=1)
	}
	scs = append(scs,
		ShearScenario(16, 16, Uniform, seed, opts...),
		ShearScenario(32, 8, Reversed, seed+1, opts...),
		BroadcastScenario(n, 0, opts...),
		BroadcastScenario(n, 1, opts...),
		FaultRouteScenario(n, n-2, 16, seed),
		EmbedRectScenario(n, ed, opts...),
		PermRouteScenario(pn, "random", seed),
		VirtualScenario(vn, Uniform, seed, opts...),
		DiagnosticsScenario(n, n-2, 2, seed),
		PipelineScenario(n, ed, Uniform, seed, 0, opts...),
	)
	return scs
}

func distName(d Dist) string {
	for _, e := range Dists {
		if e.D == d {
			return e.Name
		}
	}
	return fmt.Sprintf("dist%d", int(d))
}

// EngineSweep drives one full mesh-unit-route sweep — every
// dimension, both directions — on the star machine: the standard
// workload of the engine benchmarks and the `engine` parity
// experiment (register V routed into W).
func EngineSweep(m *starsim.Machine) {
	m.EnsureReg("V")
	m.EnsureReg("W")
	m.Set("V", func(pe int) int64 { return int64(pe) })
	for k := 1; k <= m.N-1; k++ {
		m.MeshUnitRoute("V", "W", k, +1)
		m.MeshUnitRoute("V", "W", k, -1)
	}
}

// RegChecksum folds a register into an order-sensitive checksum, for
// cheap whole-register equality checks across executors.
func RegChecksum(m *starsim.Machine, name string) int64 {
	sum := int64(0)
	for _, v := range m.Reg(name) {
		sum = sum*31 + v
	}
	return sum
}

// ScalingPoint is one entry of the GOMAXPROCS scaling curve: the S_8
// replay sweep under the parallel executor limited to Procs procs,
// and its speedup over the sequential replay of the same sweep.
type ScalingPoint struct {
	Procs    int     `json:"procs"`
	ReplayNs int64   `json:"replay_ns"`
	Speedup  float64 `json:"speedup_vs_sequential"`
}

// BenchRecord is the schema of BENCH_engine.json: the perf record
// the engine benchmarks emit for an S_8-or-larger workload. The
// closure-path fields (baseline/sequential/parallel, plans off)
// isolate the engine's route-cache and executor costs; the replay
// fields measure the production path (plans on, permutation replay
// over the register banks) and carry the GOMAXPROCS 1→8 scaling
// curve. HostCPUs qualifies the curve: a point at Procs beyond
// HostCPUs only time-slices and cannot show real scaling, which is
// why the CI speedup gate keys on the runner's CPU count.
type BenchRecord struct {
	Benchmark          string         `json:"benchmark"`
	Timestamp          string         `json:"timestamp"`
	GoMaxProcs         int            `json:"gomaxprocs"`
	HostCPUs           int            `json:"host_cpus"`
	N                  int            `json:"n"`
	PEs                int            `json:"pes"`
	Reps               int            `json:"reps"`
	BaselineNs         int64          `json:"baseline_generic_ns"`
	SequentialNs       int64          `json:"sequential_ns"`
	ParallelNs         int64          `json:"parallel_ns"`
	SpeedupEngine      float64        `json:"speedup_engine_vs_baseline"`
	SpeedupParallel    float64        `json:"speedup_parallel_vs_sequential"`
	ReplaySequentialNs int64          `json:"replay_sequential_ns,omitempty"`
	ReplayScaling      []ScalingPoint `json:"replay_scaling,omitempty"`
	Batch              *BatchResult   `json:"batch,omitempty"`
}

// WriteJSON writes the record as indented JSON.
func (r *BenchRecord) WriteJSON(path string) error {
	return writeJSON(r, path)
}

// PlanBenchRecord is the schema of BENCH_plans.json: the measured
// effect of compiled route plans (replay vs closure resolution on
// the S_8 mesh-route sweep) and of the persistent worker pool
// (pooled vs spawn-per-route parallel execution on a multi-worker
// batch run), with parity asserted before any timing is reported.
type PlanBenchRecord struct {
	Benchmark       string  `json:"benchmark"`
	Timestamp       string  `json:"timestamp"`
	GoMaxProcs      int     `json:"gomaxprocs"`
	N               int     `json:"n"`
	PEs             int     `json:"pes"`
	Reps            int     `json:"reps"`
	ClosureNs       int64   `json:"closure_ns"`
	ReplayNs        int64   `json:"replay_ns"`
	SpeedupReplay   float64 `json:"speedup_replay_vs_closure"`
	ParityOK        bool    `json:"parity_ok"`
	BatchWorkers    int     `json:"batch_workers"`
	SpawnBatchNs    int64   `json:"spawn_batch_ns"`
	PoolBatchNs     int64   `json:"pool_batch_ns"`
	SpeedupPool     float64 `json:"speedup_pool_vs_spawn"`
	BatchParityOK   bool    `json:"batch_parity_ok"`
	PlansCached     int     `json:"plans_cached"`
	BatchScenarios  int     `json:"batch_scenarios"`
	BatchBatchSize  int     `json:"batch_reps"`
	BatchSortRoutes int     `json:"batch_sort_unit_routes"`
}

// WriteJSON writes the record as indented JSON.
func (r *PlanBenchRecord) WriteJSON(path string) error {
	return writeJSON(r, path)
}

func writeJSON(v any, path string) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
