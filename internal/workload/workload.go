// Package workload provides deterministic, seeded input generators
// for the experiments and benchmarks: random keys with several
// adversarial distributions, random permutations, and random mesh
// points. Every generator has a *rand.Rand form (the canonical one —
// callers thread an explicit stream so multi-draw workloads stay
// reproducible from one seed) and a seed form that derives a fresh
// stream via NewRand. Nothing in this package touches the global
// math/rand state.
package workload

import (
	"math/rand"

	"starmesh/internal/perm"
)

// NewRand returns the deterministic random stream of a seed — the
// single way every workload, batch scenario and service JobSpec
// derives randomness, so a seed fully determines a run.
func NewRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Dist selects a key distribution.
type Dist int

const (
	// Uniform draws keys uniformly from [0, 4N).
	Uniform Dist = iota
	// Reversed is the odd-even-transposition worst case N-1 … 0.
	Reversed
	// Sorted is already in order (best case).
	Sorted
	// FewDistinct draws from only 4 distinct values.
	FewDistinct
	// ZeroOne draws from {0,1} (0-1 principle stress).
	ZeroOne
)

// Dists lists all distributions with printable names.
var Dists = []struct {
	D    Dist
	Name string
}{
	{Uniform, "uniform"},
	{Reversed, "reversed"},
	{Sorted, "sorted"},
	{FewDistinct, "few-distinct"},
	{ZeroOne, "zero-one"},
}

// Keys generates n keys of the given distribution from a fresh
// stream seeded with seed.
func Keys(d Dist, n int, seed int64) []int64 {
	return KeysRand(d, n, NewRand(seed))
}

// KeysRand generates n keys of the given distribution, drawing from
// the caller's random stream.
func KeysRand(d Dist, n int, rng *rand.Rand) []int64 {
	out := make([]int64, n)
	switch d {
	case Uniform:
		for i := range out {
			out[i] = int64(rng.Intn(4*n + 1))
		}
	case Reversed:
		for i := range out {
			out[i] = int64(n - 1 - i)
		}
	case Sorted:
		for i := range out {
			out[i] = int64(i)
		}
	case FewDistinct:
		for i := range out {
			out[i] = int64(rng.Intn(4))
		}
	case ZeroOne:
		for i := range out {
			out[i] = int64(rng.Intn(2))
		}
	default:
		panic("workload: unknown distribution")
	}
	return out
}

// Perms generates count random permutations of n symbols from a
// fresh stream seeded with seed.
func Perms(n, count int, seed int64) []perm.Perm {
	return PermsRand(n, count, NewRand(seed))
}

// PermsRand generates count random permutations of n symbols from
// the caller's random stream.
func PermsRand(n, count int, rng *rand.Rand) []perm.Perm {
	out := make([]perm.Perm, count)
	for i := range out {
		out[i] = perm.Random(n, rng)
	}
	return out
}

// MeshPoints generates count random D_n coordinates from a fresh
// stream seeded with seed.
func MeshPoints(n, count int, seed int64) [][]int {
	return MeshPointsRand(n, count, NewRand(seed))
}

// MeshPointsRand generates count random D_n coordinates from the
// caller's random stream.
func MeshPointsRand(n, count int, rng *rand.Rand) [][]int {
	out := make([][]int, count)
	for i := range out {
		pt := make([]int, n-1)
		for k := 1; k <= n-1; k++ {
			pt[k-1] = rng.Intn(k + 1)
		}
		out[i] = pt
	}
	return out
}

// RandomVertexMap returns a random bijection [0,n) → [0,n) from a
// fresh stream seeded with seed.
func RandomVertexMap(n int, seed int64) []int {
	return RandomVertexMapRand(n, NewRand(seed))
}

// RandomVertexMapRand returns a random bijection [0,n) → [0,n) from
// the caller's random stream.
func RandomVertexMapRand(n int, rng *rand.Rand) []int {
	vm := make([]int, n)
	for i := range vm {
		vm[i] = i
	}
	rng.Shuffle(n, func(i, j int) { vm[i], vm[j] = vm[j], vm[i] })
	return vm
}
