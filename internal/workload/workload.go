// Package workload provides deterministic, seeded input generators
// for the experiments and benchmarks: random keys with several
// adversarial distributions, random permutations, and random mesh
// points. Everything is reproducible from an explicit seed.
package workload

import (
	"math/rand"

	"starmesh/internal/perm"
)

// Dist selects a key distribution.
type Dist int

const (
	// Uniform draws keys uniformly from [0, 4N).
	Uniform Dist = iota
	// Reversed is the odd-even-transposition worst case N-1 … 0.
	Reversed
	// Sorted is already in order (best case).
	Sorted
	// FewDistinct draws from only 4 distinct values.
	FewDistinct
	// ZeroOne draws from {0,1} (0-1 principle stress).
	ZeroOne
)

// Dists lists all distributions with printable names.
var Dists = []struct {
	D    Dist
	Name string
}{
	{Uniform, "uniform"},
	{Reversed, "reversed"},
	{Sorted, "sorted"},
	{FewDistinct, "few-distinct"},
	{ZeroOne, "zero-one"},
}

// Keys generates n keys of the given distribution.
func Keys(d Dist, n int, seed int64) []int64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]int64, n)
	switch d {
	case Uniform:
		for i := range out {
			out[i] = int64(rng.Intn(4*n + 1))
		}
	case Reversed:
		for i := range out {
			out[i] = int64(n - 1 - i)
		}
	case Sorted:
		for i := range out {
			out[i] = int64(i)
		}
	case FewDistinct:
		for i := range out {
			out[i] = int64(rng.Intn(4))
		}
	case ZeroOne:
		for i := range out {
			out[i] = int64(rng.Intn(2))
		}
	default:
		panic("workload: unknown distribution")
	}
	return out
}

// Perms generates count random permutations of n symbols.
func Perms(n, count int, seed int64) []perm.Perm {
	rng := rand.New(rand.NewSource(seed))
	out := make([]perm.Perm, count)
	for i := range out {
		out[i] = perm.Random(n, rng)
	}
	return out
}

// MeshPoints generates count random D_n coordinates.
func MeshPoints(n, count int, seed int64) [][]int {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]int, count)
	for i := range out {
		pt := make([]int, n-1)
		for k := 1; k <= n-1; k++ {
			pt[k-1] = rng.Intn(k + 1)
		}
		out[i] = pt
	}
	return out
}

// RandomVertexMap returns a random bijection [0,n) → [0,n).
func RandomVertexMap(n int, seed int64) []int {
	rng := rand.New(rand.NewSource(seed))
	vm := make([]int, n)
	for i := range vm {
		vm[i] = i
	}
	rng.Shuffle(n, func(i, j int) { vm[i], vm[j] = vm[j], vm[i] })
	return vm
}
