// Package atallah implements §4 and the appendix of the paper: the
// simulation of uniform meshes on rectangular meshes via Atallah's
// theorem ([ATAL88], Theorems 7 and 8), the resulting weak upper
// bound for uniform meshes on the star graph (Theorem 9), and the
// appendix's factorization of the 2×3×…×n mesh into a d-dimensional
// rectangular mesh with an O(1)-dilation (snake) realization,
// together with the sorting-cost model whose optimal simulation
// dimension is Θ(√log N).
package atallah

import (
	"fmt"
	"math"

	"starmesh/internal/mesh"
	"starmesh/internal/perm"
)

// Factorization groups the dimension sizes {2,…,n} of D_n into d
// groups, following the appendix: group t (1-indexed) takes the
// sizes n-t+1, n-t+1-d, n-t+1-2d, … while they remain ≥ 2.
type Factorization struct {
	N int // star parameter; |D_n| = n!
	D int // number of groups
	// Groups[t] lists the sizes in group t, descending.
	Groups [][]int
	// L[t] = ∏ Groups[t], the side of grouped dimension t.
	L []int64
}

// Factorize computes the appendix grouping. Requires 1 ≤ d ≤ n-1.
func Factorize(n, d int) Factorization {
	if n < 2 || d < 1 || d > n-1 {
		panic(fmt.Sprintf("atallah: invalid factorization n=%d d=%d", n, d))
	}
	f := Factorization{N: n, D: d, Groups: make([][]int, d), L: make([]int64, d)}
	for t := 0; t < d; t++ {
		f.L[t] = 1
		for s := n - t; s >= 2; s -= d {
			f.Groups[t] = append(f.Groups[t], s)
			f.L[t] *= int64(s)
		}
	}
	return f
}

// Product returns ∏ L[t]; always equals n!.
func (f Factorization) Product() int64 {
	p := int64(1)
	for _, l := range f.L {
		p *= l
	}
	return p
}

// Ratio returns l_max / l_min as a float; the appendix bounds
// l_1/l_d by n(1 + n mod d) ≤ n·d.
func (f Factorization) Ratio() float64 {
	lo, hi := f.L[0], f.L[0]
	for _, l := range f.L {
		if l < lo {
			lo = l
		}
		if l > hi {
			hi = l
		}
	}
	return float64(hi) / float64(lo)
}

// RatioBound returns the appendix bound n·d on Ratio.
func (f Factorization) RatioBound() float64 { return float64(f.N * f.D) }

// RectMesh returns the d-dimensional rectangular mesh with sides
// L[0..d-1]. Panics if any side exceeds the int range.
func (f Factorization) RectMesh() *mesh.Mesh {
	sizes := make([]int, f.D)
	for t, l := range f.L {
		if l > int64(math.MaxInt32) {
			panic("atallah: grouped dimension too large to materialize")
		}
		sizes[t] = int(l)
	}
	return mesh.New(sizes...)
}

// Grouped realizes the rectangular mesh R = L[0]×…×L[d-1] on the
// physical mesh D_n: grouped coordinate t is the snake index of the
// group's sub-coordinates, so a ±1 move in any grouped dimension is
// exactly one D_n unit step (the appendix's O(1) simulation).
type Grouped struct {
	F  Factorization
	Dn *mesh.Mesh // the physical 2×3×…×n mesh
	R  *mesh.Mesh // the logical rectangular mesh
	// dims[t] lists the D_n dimension indices (0-based) in group t,
	// ordered to match Groups[t] (descending size).
	dims [][]int
	// subs[t] is the sub-mesh over group t's sizes, used for snake
	// encoding. Sub-mesh dimension order matches dims[t] reversed so
	// that the smallest size varies fastest.
	subs []*mesh.Mesh
}

// NewGrouped builds the realization.
func NewGrouped(f Factorization) *Grouped {
	g := &Grouped{F: f, Dn: mesh.D(f.N), R: f.RectMesh()}
	g.dims = make([][]int, f.D)
	g.subs = make([]*mesh.Mesh, f.D)
	for t := 0; t < f.D; t++ {
		// Group t holds sizes n-t, n-t-d, …; size s is D_n dimension
		// index s-2 (dimension k has size k+1, 0-based index k-1).
		var dimIdx []int
		var sizes []int
		for _, s := range f.Groups[t] {
			dimIdx = append(dimIdx, s-2)
			sizes = append(sizes, s)
		}
		// Reverse so the smallest size is dimension 0 of the
		// sub-mesh (fastest-varying in the snake).
		for l, r := 0, len(dimIdx)-1; l < r; l, r = l+1, r-1 {
			dimIdx[l], dimIdx[r] = dimIdx[r], dimIdx[l]
			sizes[l], sizes[r] = sizes[r], sizes[l]
		}
		g.dims[t] = dimIdx
		g.subs[t] = mesh.New(sizes...)
	}
	return g
}

// ToR maps a D_n node id to its logical R node id.
func (g *Grouped) ToR(dnID int) int {
	coords := make([]int, g.F.D)
	for t := 0; t < g.F.D; t++ {
		sub := make([]int, len(g.dims[t]))
		for i, j := range g.dims[t] {
			sub[i] = g.Dn.Coord(dnID, j)
		}
		coords[t] = g.subs[t].SnakeIndex(sub)
	}
	return g.R.ID(coords)
}

// ToDn maps a logical R node id back to the D_n node id.
func (g *Grouped) ToDn(rID int) int {
	coords := make([]int, g.Dn.Dims())
	for t := 0; t < g.F.D; t++ {
		v := g.R.Coord(rID, t)
		sub := g.subs[t].SnakeCoords(nil, v)
		for i, j := range g.dims[t] {
			coords[j] = sub[i]
		}
	}
	return g.Dn.ID(coords)
}

// StepCost returns the D_n Manhattan distance realized by a ±1 move
// in grouped dimension t from logical node rID, or -1 at the
// boundary. The appendix's snake construction makes this always 1.
func (g *Grouped) StepCost(rID, t, dir int) int {
	to := g.R.Step(rID, t, dir)
	if to == -1 {
		return -1
	}
	return g.Dn.Distance(g.ToDn(rID), g.ToDn(to))
}

// SanityProduct double-checks ∏L = n! (used by tests and the
// experiments binary).
func (f Factorization) SanityProduct() bool {
	return f.Product() == perm.Factorial(f.N)
}
