package atallah

import (
	"math"
	"testing"

	"starmesh/internal/mesh"
	"starmesh/internal/perm"
)

func TestFactorizeProductIsFactorial(t *testing.T) {
	for n := 2; n <= 12; n++ {
		for d := 1; d <= n-1; d++ {
			f := Factorize(n, d)
			if !f.SanityProduct() {
				t.Fatalf("n=%d d=%d: product %d != %d!", n, d, f.Product(), n)
			}
			if len(f.L) != d {
				t.Fatalf("n=%d d=%d: %d groups", n, d, len(f.L))
			}
		}
	}
}

func TestFactorizeMatchesAppendixFormula(t *testing.T) {
	// l_1 = n(n-d)(n-2d)…, l_2 = (n-1)(n-1-d)…, etc.
	f := Factorize(8, 3)
	// Group 1: 8,5,2 → 80; group 2: 7,4 → 28; group 3: 6,3 → 18.
	want := []int64{80, 28, 18}
	for t2, w := range want {
		if f.L[t2] != w {
			t.Fatalf("L = %v, want %v", f.L, want)
		}
	}
	if f.Product() != perm.Factorial(8) {
		t.Fatalf("product wrong")
	}
}

func TestFactorizeD1IsLinear(t *testing.T) {
	f := Factorize(5, 1)
	if len(f.L) != 1 || f.L[0] != 120 {
		t.Fatalf("d=1 should give the full linear order: %v", f.L)
	}
}

func TestFactorizeDMax(t *testing.T) {
	// d = n-1: every group is a single size; R = D_n itself.
	f := Factorize(5, 4)
	want := []int64{5, 4, 3, 2}
	for i, w := range want {
		if f.L[i] != w {
			t.Fatalf("L = %v", f.L)
		}
	}
}

func TestRatioBound(t *testing.T) {
	// Appendix: l_1/l_d ≤ n·d.
	for n := 3; n <= 12; n++ {
		for d := 1; d <= n-1; d++ {
			f := Factorize(n, d)
			if f.Ratio() > f.RatioBound()+1e-9 {
				t.Fatalf("n=%d d=%d: ratio %.2f > bound %.2f", n, d, f.Ratio(), f.RatioBound())
			}
		}
	}
}

func TestFactorizePanics(t *testing.T) {
	for _, c := range [][2]int{{1, 1}, {4, 0}, {4, 4}, {3, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Factorize(%d,%d) did not panic", c[0], c[1])
				}
			}()
			Factorize(c[0], c[1])
		}()
	}
}

func TestGroupedBijective(t *testing.T) {
	for _, c := range [][2]int{{4, 2}, {5, 2}, {5, 3}, {6, 2}, {6, 3}} {
		g := NewGrouped(Factorize(c[0], c[1]))
		if g.R.Order() != g.Dn.Order() {
			t.Fatalf("n=%d d=%d: order mismatch", c[0], c[1])
		}
		seen := make([]bool, g.R.Order())
		for id := 0; id < g.Dn.Order(); id++ {
			r := g.ToR(id)
			if seen[r] {
				t.Fatalf("n=%d d=%d: ToR not injective", c[0], c[1])
			}
			seen[r] = true
			if g.ToDn(r) != id {
				t.Fatalf("n=%d d=%d: roundtrip failed at %d", c[0], c[1], id)
			}
		}
	}
}

func TestGroupedStepCostIsOne(t *testing.T) {
	// The appendix claim: every ±1 move in a grouped dimension is a
	// single physical D_n step (dilation 1 via snake encoding).
	for _, c := range [][2]int{{4, 2}, {5, 2}, {5, 3}, {6, 2}} {
		g := NewGrouped(Factorize(c[0], c[1]))
		for rID := 0; rID < g.R.Order(); rID++ {
			for t2 := 0; t2 < g.F.D; t2++ {
				for _, dir := range []int{+1, -1} {
					cost := g.StepCost(rID, t2, dir)
					if cost != -1 && cost != 1 {
						t.Fatalf("n=%d d=%d r=%d dim=%d dir=%d: step cost %d",
							c[0], c[1], rID, t2, dir, cost)
					}
				}
			}
		}
	}
}

func TestUniformGuestShape(t *testing.T) {
	host := mesh.New(6, 4) // 24 nodes, d=2 → side 5
	u := UniformGuest(host)
	if u.Dims() != 2 || u.Size(0) != 5 || u.Size(1) != 5 {
		t.Fatalf("guest shape %v", u.Sizes())
	}
}

func TestSimulationAssignTotal(t *testing.T) {
	host := mesh.New(8, 3)
	s := NewSimulation(UniformGuest(host), host)
	for u := 0; u < s.U.Order(); u++ {
		r := s.Assign(u)
		if r < 0 || r >= host.Order() {
			t.Fatalf("assignment out of range")
		}
	}
}

func TestSimulationMetricsUniformHost(t *testing.T) {
	// Host already uniform: load 1-ish, dilation ≤ 1, slowdown tiny.
	host := mesh.New(5, 5)
	s := NewSimulation(mesh.New(5, 5), host)
	m := s.Measure()
	if m.MaxLoad != 1 || m.Dilation != 1 || m.UsedHosts != 25 {
		t.Fatalf("uniform-on-uniform metrics: %+v", m)
	}
}

func TestSimulationLopsidedHost(t *testing.T) {
	// Very lopsided host: dilation must grow along the long
	// dimension roughly like l_max/side, within the Theorem 8 bound.
	host := mesh.New(32, 2) // N=64, d=2, side=8
	s := NewSimulation(UniformGuest(host), host)
	m := s.Measure()
	if m.Dilation < 2 {
		t.Fatalf("expected stretched dilation, got %+v", m)
	}
	if float64(m.Dilation) > m.Theorem8 {
		t.Fatalf("dilation %d exceeds Theorem-8 bound %.2f", m.Dilation, m.Theorem8)
	}
	if m.MaxLoad < 2 {
		t.Fatalf("expected contraction load ≥ 2 on short dimension, got %+v", m)
	}
}

func TestSimulationDimMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	NewSimulation(mesh.New(4), mesh.New(2, 2))
}

func TestTheorem8Bound(t *testing.T) {
	// For a uniform mesh, bound = side·2d/side = 2d.
	if got := Theorem8Bound(mesh.New(5, 5)); math.Abs(got-4) > 1e-9 {
		t.Fatalf("bound = %v, want 4", got)
	}
}

func TestTheorem9SlowdownGrowth(t *testing.T) {
	// The bound grows like 2^n and its N-exponent shrinks like
	// n/log²N (→ 0 as n grows).
	s6, e6 := Theorem9Slowdown(6)
	s8, e8 := Theorem9Slowdown(8)
	if s8 <= s6 {
		t.Fatalf("slowdown must grow with n: %v vs %v", s6, s8)
	}
	if e8 >= e6 {
		t.Fatalf("exponent must shrink with n: %v vs %v", e6, e8)
	}
	if e6 <= 0 || e6 >= 1 {
		t.Fatalf("exponent out of (0,1): %v", e6)
	}
}

func TestSortCostModelConvex(t *testing.T) {
	// T(1) huge (N²), T large-d huge (2^d), minimum in between.
	N := float64(perm.Factorial(10))
	d1 := SortCostModel(N, 1)
	dStar, tStar := OptimalSortDimension(N, 30)
	dBig := SortCostModel(N, 30)
	if tStar >= d1 || tStar >= dBig {
		t.Fatalf("model not minimized in interior: d*=%d", dStar)
	}
	if dStar < 2 || dStar > 15 {
		t.Fatalf("optimal d = %d implausible", dStar)
	}
	// Near the predicted √(2 log N).
	pred := PredictedOptimalD(N)
	if math.Abs(float64(dStar)-pred) > 3 {
		t.Fatalf("optimal d %d far from predicted %.1f", dStar, pred)
	}
}

func TestLog2Factorial(t *testing.T) {
	if math.Abs(Log2Factorial(5)-math.Log2(120)) > 1e-9 {
		t.Fatalf("Log2Factorial wrong")
	}
}

func TestFactorizationString(t *testing.T) {
	f := Factorize(4, 2)
	if f.String() != "4! = 8 * 3" {
		t.Fatalf("String = %q", f.String())
	}
}

func BenchmarkGroupedToR(b *testing.B) {
	g := NewGrouped(Factorize(8, 3))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = g.ToR(i % g.Dn.Order())
	}
}
