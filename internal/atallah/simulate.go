package atallah

import (
	"fmt"
	"math"

	"starmesh/internal/mesh"
)

// Simulation measures the block-scaling simulation of a uniform
// d-dimensional mesh U on a rectangular d-dimensional mesh R with
// (approximately) the same number of processors, the concrete
// construction standing in for Atallah's theorem ([ATAL88]): U node
// (u_1,…,u_d) is assigned to R node (⌊u_1·l_1/L⌋,…,⌊u_d·l_d/L⌋).
//
// Substitution note (see DESIGN.md): the paper only cites Atallah's
// slowdown O((max_i l_i)/N^(1/d)) (refined by Theorem 8 with a 2d
// factor); we build the natural proportional block mapping and
// measure its load (compute slowdown) and dilation (communication
// slowdown), then compare with the analytic bound. The shape — the
// slowdown is governed by max_i l_i / N^(1/d) — is preserved.
type Simulation struct {
	U *mesh.Mesh
	R *mesh.Mesh
}

// NewSimulation pairs a uniform guest with a rectangular host of the
// same dimensionality.
func NewSimulation(u, r *mesh.Mesh) *Simulation {
	if u.Dims() != r.Dims() {
		panic("atallah: dimensionality mismatch")
	}
	return &Simulation{U: u, R: r}
}

// UniformGuest builds the d-dimensional uniform mesh with side
// round(N^(1/d)) for N = |host|.
func UniformGuest(host *mesh.Mesh) *mesh.Mesh {
	d := host.Dims()
	side := int(math.Round(math.Pow(float64(host.Order()), 1/float64(d))))
	if side < 2 {
		side = 2
	}
	sizes := make([]int, d)
	for j := range sizes {
		sizes[j] = side
	}
	return mesh.New(sizes...)
}

// Assign returns the R node simulating the given U node.
func (s *Simulation) Assign(uID int) int {
	d := s.U.Dims()
	coords := make([]int, d)
	for j := 0; j < d; j++ {
		u := s.U.Coord(uID, j)
		l := s.R.Size(j)
		L := s.U.Size(j)
		c := u * l / L
		if c >= l {
			c = l - 1
		}
		coords[j] = c
	}
	return s.R.ID(coords)
}

// Metrics reports the measured cost of one guest step.
type Metrics struct {
	MaxLoad    int     // most guest nodes on one host node
	AvgLoad    float64 // |U| / number of used host nodes
	Dilation   int     // max host distance between images of U-neighbors
	Slowdown   int     // MaxLoad + Dilation: host steps per guest step
	Theorem8   float64 // analytic bound (max_i l_i)·2d/N^(1/d)
	UsedHosts  int
	GuestOrder int
	HostOrder  int
}

// Measure walks all guest nodes and edges.
func (s *Simulation) Measure() Metrics {
	m := Metrics{GuestOrder: s.U.Order(), HostOrder: s.R.Order()}
	load := make(map[int]int)
	for u := 0; u < s.U.Order(); u++ {
		load[s.Assign(u)]++
	}
	for _, c := range load {
		if c > m.MaxLoad {
			m.MaxLoad = c
		}
	}
	m.UsedHosts = len(load)
	m.AvgLoad = float64(s.U.Order()) / float64(len(load))
	var buf []int
	for u := 0; u < s.U.Order(); u++ {
		ru := s.Assign(u)
		buf = s.U.AppendNeighbors(buf[:0], u)
		for _, v := range buf {
			if d := s.R.Distance(ru, s.Assign(v)); d > m.Dilation {
				m.Dilation = d
			}
		}
	}
	m.Slowdown = m.MaxLoad + m.Dilation
	m.Theorem8 = Theorem8Bound(s.R)
	return m
}

// Theorem8Bound returns (max_i l_i) · 2d / N^(1/d) for the host mesh.
func Theorem8Bound(r *mesh.Mesh) float64 {
	maxL := 0
	for j := 0; j < r.Dims(); j++ {
		if r.Size(j) > maxL {
			maxL = r.Size(j)
		}
	}
	d := float64(r.Dims())
	return float64(maxL) * 2 * d / math.Pow(float64(r.Order()), 1/d)
}

// Log2Factorial returns log2(n!) = log2 N.
func Log2Factorial(n int) float64 {
	s := 0.0
	for i := 2; i <= n; i++ {
		s += math.Log2(float64(i))
	}
	return s
}

// Theorem9Slowdown returns the paper's weak upper bound on simulating
// one step of the uniform (n-1)-dimensional mesh of N = n! nodes on
// D_n (and hence on S_n): O(2^(n-1)·n/N^(1/(n-1))) = O(2^n), which
// the paper rewrites as O(N^(n/log²N)). The second return value is
// the measured exponent log_N(slowdown).
func Theorem9Slowdown(n int) (slowdown float64, exponent float64) {
	slowdown = math.Pow(2, float64(n-1)) * float64(n) /
		math.Pow(factorialF(n), 1/float64(n-1))
	exponent = math.Log2(slowdown) / Log2Factorial(n)
	return slowdown, exponent
}

func factorialF(n int) float64 {
	f := 1.0
	for i := 2; i <= n; i++ {
		f *= float64(i)
	}
	return f
}

// SortCostModel returns the §5/appendix cost model for sorting N
// keys by simulating a d-dimensional mesh sort (an O(N^(1/d))-step
// algorithm) on the star graph: T(d) = d · 2^d · N^(2/d).
func SortCostModel(N float64, d int) float64 {
	return float64(d) * math.Pow(2, float64(d)) * math.Pow(N, 2/float64(d))
}

// OptimalSortDimension minimizes SortCostModel over 1 ≤ d ≤ maxD and
// returns (d*, T(d*)). The appendix derives d* = Θ(√log N).
func OptimalSortDimension(N float64, maxD int) (int, float64) {
	bestD, bestT := 1, math.Inf(1)
	for d := 1; d <= maxD; d++ {
		if t := SortCostModel(N, d); t < bestT {
			bestD, bestT = d, t
		}
	}
	return bestD, bestT
}

// PredictedOptimalD returns the closed-form minimizer of the cost
// model: setting d/dd [ln d + d·ln2 + (2/d)·ln N] = 0 and dropping
// the 1/d term gives d* ≈ √(2·log₂N) — the appendix's Θ(√log N).
func PredictedOptimalD(N float64) float64 {
	return math.Sqrt(2 * math.Log2(N))
}

// String renders a factorization like "24 = 6*4 (groups [4 2][3])".
func (f Factorization) String() string {
	s := fmt.Sprintf("%d! =", f.N)
	for t, l := range f.L {
		if t > 0 {
			s += " *"
		}
		s += fmt.Sprintf(" %d", l)
	}
	return s
}
