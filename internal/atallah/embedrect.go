package atallah

import (
	"starmesh/internal/core"
	"starmesh/internal/embed"
	"starmesh/internal/perm"
	"starmesh/internal/star"
)

// EmbedRect composes the appendix's grouped realization with the
// paper's embedding: the d-dimensional rectangular mesh
// R = l_1×…×l_d (from Factorize(n,d)) embeds into S_n with expansion
// 1 and dilation 3, because a ±1 move in any grouped dimension is a
// single D_n step (snake property) and every D_n step maps to a
// Lemma-2 path of length ≤ 3.
//
// This is the paper's appendix made into a first-class embedding: it
// lets star-graph programs use any d-dimensional mesh view of the
// machine, not just the native (n-1)-dimensional one.
func EmbedRect(n, d int) *embed.Embedding {
	g := NewGrouped(Factorize(n, d))
	s := star.New(n)
	dn := g.Dn
	vm := make([]int, g.R.Order())
	coords := make([]int, 0, dn.Dims())
	for rID := 0; rID < g.R.Order(); rID++ {
		dnID := g.ToDn(rID)
		coords = dn.Coords(coords[:0], dnID)
		vm[rID] = s.ID(core.ConvertDS(coords))
	}
	e := &embed.Embedding{
		Guest:     g.R,
		Host:      s,
		VertexMap: vm,
		Dist: func(hu, hv int) int {
			return star.Distance(s.Node(hu), s.Node(hv))
		},
	}
	e.Path = func(u, v int) []int {
		du, dv := g.ToDn(u), g.ToDn(v)
		// Snake property: du and dv differ in exactly one D_n
		// dimension by ±1.
		dim, dir := -1, 0
		for j := 0; j < dn.Dims(); j++ {
			cu, cv := dn.Coord(du, j), dn.Coord(dv, j)
			if cu != cv {
				dim, dir = j+1, cv-cu
			}
		}
		if dim == -1 || (dir != 1 && dir != -1) {
			return nil
		}
		p := perm.Unrank(n, int64(vm[u]))
		path, ok := core.Path(p, dim, dir)
		if !ok {
			return nil
		}
		ids := make([]int, len(path))
		for i, q := range path {
			ids[i] = s.ID(q)
		}
		return ids
	}
	return e
}
