package atallah

import (
	"testing"
)

func TestEmbedRectDilation3(t *testing.T) {
	for _, c := range [][2]int{{4, 2}, {5, 2}, {5, 3}, {6, 2}, {6, 3}} {
		e := EmbedRect(c[0], c[1])
		if e.Expansion() != 1 {
			t.Fatalf("n=%d d=%d: expansion %v", c[0], c[1], e.Expansion())
		}
		if dil := e.DilationOnly(); dil != 3 {
			t.Fatalf("n=%d d=%d: dilation %d, want 3", c[0], c[1], dil)
		}
	}
}

func TestEmbedRectValidates(t *testing.T) {
	for _, c := range [][2]int{{4, 2}, {5, 2}, {5, 3}} {
		if err := EmbedRect(c[0], c[1]).Validate(); err != nil {
			t.Fatalf("n=%d d=%d: %v", c[0], c[1], err)
		}
	}
}

func TestEmbedRectMeasuredPaths(t *testing.T) {
	e := EmbedRect(5, 2)
	m := e.Measure()
	if m.Dilation != 3 || m.Expansion != 1 {
		t.Fatalf("metrics: %+v", m)
	}
	// Guest edge count of the 15x8 mesh: 14*8 + 15*7 = 217.
	if m.GuestEdges != 14*8+15*7 {
		t.Fatalf("guest edges = %d", m.GuestEdges)
	}
}

func BenchmarkEmbedRect(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = EmbedRect(6, 3)
	}
}
