// Package hypercube implements the binary d-cube Q_d and the
// classical Gray-code embedding of rectangular meshes into it
// ([SAAD88], [CHAN88]). The paper's introduction motivates the star
// graph as an alternative to the hypercube; experiment E12 reproduces
// that comparison (nodes, degree, diameter) and E18 uses the Gray
// embedding as the "meshes embed well in hypercubes" baseline.
package hypercube

import (
	"fmt"
	"math/bits"

	"starmesh/internal/mesh"
)

// Graph is the hypercube Q_d on 2^d vertices; vertex ids are the
// binary labels and edges flip a single bit.
type Graph struct {
	d int
}

// New returns Q_d.
func New(d int) *Graph {
	if d < 0 || d > 30 {
		panic(fmt.Sprintf("hypercube: unsupported dimension %d", d))
	}
	return &Graph{d: d}
}

// Dim returns d.
func (g *Graph) Dim() int { return g.d }

// Order returns 2^d.
func (g *Graph) Order() int { return 1 << g.d }

// AppendNeighbors implements graphalg.Graph.
func (g *Graph) AppendNeighbors(buf []int, v int) []int {
	for b := 0; b < g.d; b++ {
		buf = append(buf, v^(1<<b))
	}
	return buf
}

// Distance returns the Hamming distance between two vertices.
func Distance(u, v int) int { return bits.OnesCount32(uint32(u ^ v)) }

// Diameter returns d.
func (g *Graph) Diameter() int { return g.d }

// MinDimFor returns the smallest d with 2^d ≥ n.
func MinDimFor(n int64) int {
	d := 0
	for int64(1)<<d < n {
		d++
	}
	return d
}

// Gray returns the i-th binary reflected Gray code.
func Gray(i int) int { return i ^ (i >> 1) }

// GrayInverse inverts Gray.
func GrayInverse(gc int) int {
	i := 0
	for gc != 0 {
		i ^= gc
		gc >>= 1
	}
	return i
}

// MeshEmbedding is a vertex map from a rectangular mesh into a
// hypercube built from per-dimension reflected Gray codes. When every
// mesh dimension is a power of two the embedding has dilation 1;
// otherwise dimensions are padded to the next power of two
// (expansion > 1, dilation still 1 because consecutive Gray codes
// differ in one bit).
type MeshEmbedding struct {
	M       *mesh.Mesh
	H       *Graph
	bitsPer []int
	shift   []int
}

// NewMeshEmbedding builds the Gray-code embedding of m.
func NewMeshEmbedding(m *mesh.Mesh) *MeshEmbedding {
	e := &MeshEmbedding{M: m}
	total := 0
	for j := 0; j < m.Dims(); j++ {
		b := 0
		for 1<<b < m.Size(j) {
			b++
		}
		e.bitsPer = append(e.bitsPer, b)
		e.shift = append(e.shift, total)
		total += b
	}
	e.H = New(total)
	return e
}

// MapNode returns the hypercube vertex hosting the given mesh node.
func (e *MeshEmbedding) MapNode(id int) int {
	v := 0
	for j := 0; j < e.M.Dims(); j++ {
		v |= Gray(e.M.Coord(id, j)) << e.shift[j]
	}
	return v
}

// Dilation returns the maximum Hamming distance between the images
// of adjacent mesh nodes (1 for any mesh, by the Gray-code property).
func (e *MeshEmbedding) Dilation() int {
	maxD := 0
	var buf []int
	for id := 0; id < e.M.Order(); id++ {
		buf = e.M.AppendNeighbors(buf[:0], id)
		for _, w := range buf {
			if d := Distance(e.MapNode(id), e.MapNode(w)); d > maxD {
				maxD = d
			}
		}
	}
	return maxD
}

// Expansion returns |Q_d| / |mesh|.
func (e *MeshEmbedding) Expansion() float64 {
	return float64(e.H.Order()) / float64(e.M.Order())
}
