package hypercube

import (
	"testing"
	"testing/quick"

	"starmesh/internal/graphalg"
	"starmesh/internal/mesh"
)

func TestBasicProperties(t *testing.T) {
	g := New(4)
	if g.Order() != 16 || g.Dim() != 4 {
		t.Fatalf("Q4 shape wrong")
	}
	ok, d := graphalg.IsRegular(g)
	if !ok || d != 4 {
		t.Fatalf("Q4 not 4-regular")
	}
	if graphalg.Diameter(g) != 4 || g.Diameter() != 4 {
		t.Fatalf("Q4 diameter wrong")
	}
	if graphalg.NumEdges(g) != 32 {
		t.Fatalf("Q4 edges = %d", graphalg.NumEdges(g))
	}
}

func TestHammingDistanceMatchesBFS(t *testing.T) {
	g := New(5)
	dist := graphalg.BFS(g, 7)
	for v := 0; v < g.Order(); v++ {
		if Distance(7, v) != dist[v] {
			t.Fatalf("distance mismatch at %d", v)
		}
	}
}

func TestConnectivityIsMaximal(t *testing.T) {
	// Hypercubes are maximally fault tolerant too: κ(Q_d) = d.
	g := New(4)
	if k := graphalg.VertexConnectivity(g, true); k != 4 {
		t.Fatalf("Q4 connectivity = %d", k)
	}
}

func TestGrayCode(t *testing.T) {
	// Consecutive Gray codes differ in exactly one bit.
	for i := 0; i < 1000; i++ {
		if Distance(Gray(i), Gray(i+1)) != 1 {
			t.Fatalf("gray step %d differs in %d bits", i, Distance(Gray(i), Gray(i+1)))
		}
	}
	f := func(v uint16) bool {
		return GrayInverse(Gray(int(v))) == int(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMinDimFor(t *testing.T) {
	cases := []struct {
		n    int64
		want int
	}{{1, 0}, {2, 1}, {3, 2}, {24, 5}, {120, 7}, {720, 10}, {5040, 13}}
	for _, c := range cases {
		if got := MinDimFor(c.n); got != c.want {
			t.Errorf("MinDimFor(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestMeshEmbeddingDilationOne(t *testing.T) {
	shapes := [][]int{{2, 4}, {4, 4}, {2, 3, 4}, {3, 5}, {8}, {2, 2, 2}}
	for _, s := range shapes {
		e := NewMeshEmbedding(mesh.New(s...))
		if d := e.Dilation(); d != 1 {
			t.Fatalf("%v: gray embedding dilation = %d", s, d)
		}
	}
}

func TestMeshEmbeddingInjective(t *testing.T) {
	e := NewMeshEmbedding(mesh.New(3, 5, 2))
	seen := make(map[int]bool)
	for id := 0; id < e.M.Order(); id++ {
		v := e.MapNode(id)
		if v < 0 || v >= e.H.Order() {
			t.Fatalf("image out of range")
		}
		if seen[v] {
			t.Fatalf("embedding not injective at %d", id)
		}
		seen[v] = true
	}
}

func TestMeshEmbeddingExpansion(t *testing.T) {
	// Power-of-two mesh: expansion exactly 1.
	e := NewMeshEmbedding(mesh.New(4, 8))
	if e.Expansion() != 1 {
		t.Fatalf("expansion = %v", e.Expansion())
	}
	// 2×3×4 mesh needs 1+2+2 = 5 bits: expansion 32/24.
	e2 := NewMeshEmbedding(mesh.New(2, 3, 4))
	if e2.Expansion() != 32.0/24.0 {
		t.Fatalf("expansion = %v", e2.Expansion())
	}
}

func TestNewPanics(t *testing.T) {
	for _, d := range []int{-1, 31} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d) did not panic", d)
				}
			}()
			New(d)
		}()
	}
}

func BenchmarkMapNode(b *testing.B) {
	e := NewMeshEmbedding(mesh.New(2, 3, 4, 5, 6))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = e.MapNode(i % e.M.Order())
	}
}
