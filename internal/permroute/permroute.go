// Package permroute simulates oblivious point-to-point routing of
// full permutation traffic on the star graph: every PE holds one
// message destined to a distinct PE, messages advance along their
// greedy shortest paths, and links carry at most one message per
// unit route in each direction. This quantifies how the embedding's
// structured traffic (Theorem 6: 3 routes, zero queueing) compares
// with arbitrary traffic, where queueing is unavoidable.
package permroute

import (
	"fmt"

	"starmesh/internal/perm"
	"starmesh/internal/star"
)

// Result summarizes one routing run.
type Result struct {
	Steps     int     // unit routes until the last delivery
	MaxDist   int     // max shortest-path distance (lower bound on Steps)
	TotalHops int     // hops actually taken (= Σ distances; greedy is shortest-path)
	AvgDist   float64 // TotalHops / messages
	MaxQueue  int     // peak number of messages waiting at one node
	Messages  int
	Stretch   float64 // Steps / MaxDist (queueing overhead)
}

// message is one in-flight datum.
type message struct {
	cur  perm.Perm
	dst  perm.Perm
	done bool
}

// Route delivers one message from every node i to node dest[i]
// (dest must be a bijection over vertex ids) and returns the
// measured costs. Greedy rule per message per step: take the next
// hop of star.Route's optimal policy; a directed link carries at
// most one message per step; messages blocked on a busy link wait.
func Route(n int, dest []int) Result {
	order := int(perm.Factorial(n))
	if len(dest) != order {
		panic(fmt.Sprintf("permroute: dest has %d entries, want %d", len(dest), order))
	}
	seen := make([]bool, order)
	for _, d := range dest {
		if d < 0 || d >= order || seen[d] {
			panic("permroute: dest is not a bijection")
		}
		seen[d] = true
	}
	msgs := make([]message, order)
	res := Result{Messages: order}
	perm.All(n, func(p perm.Perm) bool {
		id := int(p.Rank())
		msgs[id] = message{cur: p.Clone(), dst: perm.Unrank(n, int64(dest[id]))}
		if d := star.Distance(p, msgs[id].dst); d > res.MaxDist {
			res.MaxDist = d
		}
		return true
	})
	// Messages whose source equals destination are done immediately.
	remaining := 0
	for i := range msgs {
		if msgs[i].cur.Equal(msgs[i].dst) {
			msgs[i].done = true
		} else {
			remaining++
		}
	}
	if remaining == 0 {
		return res
	}
	// Synchronous steps.
	limit := 20 * (res.MaxDist + 1) * 10
	queue := make(map[int64]int) // node rank -> waiting messages
	for step := 1; ; step++ {
		if step > limit {
			panic("permroute: routing did not converge (livelock?)")
		}
		usedLink := make(map[[2]int64]bool)
		for k := range queue {
			delete(queue, k)
		}
		moved := false
		for i := range msgs {
			m := &msgs[i]
			if m.done {
				continue
			}
			next := nextHop(m.cur, m.dst)
			link := [2]int64{m.cur.Rank(), next.Rank()}
			if usedLink[link] {
				continue // link busy this step; wait
			}
			usedLink[link] = true
			m.cur = next
			res.TotalHops++
			moved = true
			if m.cur.Equal(m.dst) {
				m.done = true
				remaining--
			}
		}
		// Record queueing pressure.
		for i := range msgs {
			if !msgs[i].done {
				queue[msgs[i].cur.Rank()]++
			}
		}
		for _, q := range queue {
			if q > res.MaxQueue {
				res.MaxQueue = q
			}
		}
		if remaining == 0 {
			res.Steps = step
			break
		}
		if !moved {
			panic("permroute: deadlock")
		}
	}
	res.AvgDist = float64(res.TotalHops) / float64(res.Messages)
	res.Stretch = float64(res.Steps) / float64(maxInt(res.MaxDist, 1))
	return res
}

// nextHop returns the next node on the greedy optimal path from cur
// to dst (cur != dst).
func nextHop(cur, dst perm.Perm) perm.Perm {
	front := len(cur) - 1
	s := cur[front]
	dinv := dst.Inverse()
	target := dinv[s]
	if target != front {
		return cur.SwapPositions(front, target)
	}
	i := 0
	for cur[i] == dst[i] {
		i++
	}
	return cur.SwapPositions(front, i)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Patterns ----------------------------------------------------------

// RandomDest returns a pseudo-random destination bijection from a
// linear congruential walk (deterministic per seed).
func RandomDest(order int, seed int64) []int {
	dest := make([]int, order)
	for i := range dest {
		dest[i] = i
	}
	x := uint64(seed)
	for i := order - 1; i > 0; i-- {
		x = x*6364136223846793005 + 1442695040888963407
		j := int(x % uint64(i+1))
		dest[i], dest[j] = dest[j], dest[i]
	}
	return dest
}

// ReversalDest sends rank r to rank order-1-r.
func ReversalDest(order int) []int {
	dest := make([]int, order)
	for i := range dest {
		dest[i] = order - 1 - i
	}
	return dest
}

// InverseDest sends node π to node π⁻¹ (a natural "transpose" for
// permutation networks).
func InverseDest(n int) []int {
	order := int(perm.Factorial(n))
	dest := make([]int, order)
	perm.All(n, func(p perm.Perm) bool {
		dest[p.Rank()] = int(p.Inverse().Rank())
		return true
	})
	return dest
}

// ShiftDest sends rank r to rank (r+1) mod order.
func ShiftDest(order int) []int {
	dest := make([]int, order)
	for i := range dest {
		dest[i] = (i + 1) % order
	}
	return dest
}

// Valiant routing: two-phase randomized routing. Each message first
// travels to a random intermediate node (here a random bijection, so
// both phases are permutation routings) and then to its true
// destination. Valiant's scheme trades a factor ~2 in distance for
// immunity against adversarial patterns; RouteValiant measures that
// trade-off on the star graph.

// RouteValiant routes dest in two phases through a seeded random
// intermediate bijection and returns the combined result (steps and
// hops are summed; MaxDist is the direct-pattern bound for
// comparison with Route).
func RouteValiant(n int, dest []int, seed int64) Result {
	order := int(perm.Factorial(n))
	sigma := RandomDest(order, seed)
	phase1 := Route(n, sigma)
	// Phase 2: message originally from i now sits at sigma[i] and
	// must reach dest[i].
	dest2 := make([]int, order)
	for i, s := range sigma {
		dest2[s] = dest[i]
	}
	phase2 := Route(n, dest2)
	combined := Result{
		Steps:     phase1.Steps + phase2.Steps,
		TotalHops: phase1.TotalHops + phase2.TotalHops,
		Messages:  order,
	}
	// Report the direct pattern's distance bound so stretch is
	// comparable with the one-phase router.
	perm.All(n, func(p perm.Perm) bool {
		if d := star.Distance(p, perm.Unrank(n, int64(dest[p.Rank()]))); d > combined.MaxDist {
			combined.MaxDist = d
		}
		return true
	})
	if phase1.MaxQueue > phase2.MaxQueue {
		combined.MaxQueue = phase1.MaxQueue
	} else {
		combined.MaxQueue = phase2.MaxQueue
	}
	combined.AvgDist = float64(combined.TotalHops) / float64(combined.Messages)
	combined.Stretch = float64(combined.Steps) / float64(maxInt(combined.MaxDist, 1))
	return combined
}
