package permroute

import (
	"testing"

	"starmesh/internal/perm"
	"starmesh/internal/star"
)

func TestIdentityTraffic(t *testing.T) {
	order := int(perm.Factorial(4))
	dest := make([]int, order)
	for i := range dest {
		dest[i] = i
	}
	res := Route(4, dest)
	if res.Steps != 0 || res.TotalHops != 0 || res.MaxDist != 0 {
		t.Fatalf("identity traffic cost something: %+v", res)
	}
}

func TestGreedyTakesShortestPaths(t *testing.T) {
	// TotalHops must equal the sum of pairwise distances (greedy is
	// optimal per message, blocking only delays).
	for _, mk := range []func() []int{
		func() []int { return ReversalDest(24) },
		func() []int { return RandomDest(24, 7) },
		func() []int { return InverseDest(4) },
		func() []int { return ShiftDest(24) },
	} {
		dest := mk()
		want := 0
		perm.All(4, func(p perm.Perm) bool {
			want += star.Distance(p, perm.Unrank(4, int64(dest[p.Rank()])))
			return true
		})
		res := Route(4, dest)
		if res.TotalHops != want {
			t.Fatalf("hops %d != Σ distances %d", res.TotalHops, want)
		}
		if res.Steps < res.MaxDist {
			t.Fatalf("steps %d below distance lower bound %d", res.Steps, res.MaxDist)
		}
	}
}

func TestAllPatternsDeliver(t *testing.T) {
	for _, n := range []int{3, 4, 5} {
		order := int(perm.Factorial(n))
		patterns := map[string][]int{
			"random":   RandomDest(order, 42),
			"reversal": ReversalDest(order),
			"inverse":  InverseDest(n),
			"shift":    ShiftDest(order),
		}
		for name, dest := range patterns {
			res := Route(n, dest)
			if res.Messages != order {
				t.Fatalf("%s: message count wrong", name)
			}
			if res.Steps <= 0 {
				t.Fatalf("%s: no steps recorded", name)
			}
			if res.Stretch < 1 {
				t.Fatalf("%s: stretch %v < 1", name, res.Stretch)
			}
		}
	}
}

func TestDestValidation(t *testing.T) {
	cases := [][]int{
		make([]int, 5),      // wrong length for n=3 (needs 6)
		{0, 1, 2, 3, 4, 4},  // not a bijection
		{0, 1, 2, 3, 4, 99}, // out of range
		{-1, 1, 2, 3, 4, 5}, // negative
	}
	for i, dest := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			Route(3, dest)
		}()
	}
}

func TestRandomDestIsBijection(t *testing.T) {
	dest := RandomDest(120, 99)
	seen := make([]bool, 120)
	for _, d := range dest {
		if seen[d] {
			t.Fatalf("duplicate destination")
		}
		seen[d] = true
	}
	// Different seeds give different shuffles.
	other := RandomDest(120, 100)
	same := true
	for i := range dest {
		if dest[i] != other[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatalf("seeds 99 and 100 produced identical shuffles")
	}
}

func TestNextHopDecreasesDistance(t *testing.T) {
	perm.All(5, func(p perm.Perm) bool {
		dst := perm.Unrank(5, (p.Rank()*7+1)%120)
		if p.Equal(dst) {
			return true
		}
		next := nextHop(p, dst)
		if star.Distance(next, dst) != star.Distance(p, dst)-1 {
			t.Fatalf("nextHop not greedy-optimal at %v -> %v", p, dst)
		}
		return true
	})
}

func BenchmarkRouteRandomN5(b *testing.B) {
	dest := RandomDest(120, 5)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Route(5, dest)
	}
}

func TestRouteValiantDelivers(t *testing.T) {
	for _, n := range []int{3, 4, 5} {
		order := int(perm.Factorial(n))
		direct := Route(n, ReversalDest(order))
		valiant := RouteValiant(n, ReversalDest(order), 7)
		if valiant.Steps < direct.MaxDist {
			t.Fatalf("n=%d: valiant steps below distance bound", n)
		}
		if valiant.TotalHops < direct.TotalHops {
			// Two phases cannot take fewer hops than the one-phase
			// shortest-path total.
			t.Fatalf("n=%d: valiant hops %d < direct %d", n, valiant.TotalHops, direct.TotalHops)
		}
		if valiant.Messages != order {
			t.Fatalf("message count wrong")
		}
	}
}

func TestRouteValiantDeterministic(t *testing.T) {
	a := RouteValiant(4, RandomDest(24, 1), 9)
	b := RouteValiant(4, RandomDest(24, 1), 9)
	if a != b {
		t.Fatalf("valiant not deterministic: %+v vs %+v", a, b)
	}
}
