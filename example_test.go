package starmesh_test

import (
	"fmt"

	"starmesh"
)

// The paper's §3.2 worked example: mesh node (3,0,1) maps to star
// node (0 3 1 2).
func ExampleMapMeshNode() {
	p := starmesh.MapMeshNode([]int{1, 0, 3}) // pt[k-1] = d_k
	fmt.Println(p)
	// Output: (0 3 1 2)
}

// The inverse worked example: star node (0 2 1 3) maps back to mesh
// node (3,1,1).
func ExampleUnmapStarNode() {
	p, _ := starmesh.NewPerm([]int{3, 1, 2, 0}) // displays as (0 2 1 3)
	pt := starmesh.UnmapStarNode(p)
	fmt.Printf("(d3,d2,d1) = (%d,%d,%d)\n", pt[2], pt[1], pt[0])
	// Output: (d3,d2,d1) = (3,1,1)
}

// Lemma 3's worked example: the mesh neighbors of (2 3 4 0 1) along
// dimension 3.
func ExampleMeshNeighbor() {
	p, _ := starmesh.NewPerm([]int{1, 0, 4, 3, 2}) // displays as (2 3 4 0 1)
	plus, _ := starmesh.MeshNeighbor(p, 3, +1)
	minus, _ := starmesh.MeshNeighbor(p, 3, -1)
	fmt.Println(plus)
	fmt.Println(minus)
	// Output:
	// (2 1 4 0 3)
	// (2 4 3 0 1)
}

// The dilation-3 path realizing a mesh edge (Lemma 2).
func ExampleEdgePath() {
	p, _ := starmesh.NewPerm([]int{1, 0, 4, 3, 2})
	path, _ := starmesh.EdgePath(p, 3, +1)
	for _, node := range path {
		fmt.Println(node)
	}
	// Output:
	// (2 3 4 0 1)
	// (3 2 4 0 1)
	// (1 2 4 0 3)
	// (2 1 4 0 3)
}

// Theorem 4: the embedding has expansion 1 and dilation 3.
func ExampleNewEmbedding() {
	e := starmesh.NewEmbedding(5)
	m := e.Metrics()
	fmt.Printf("expansion %.0f dilation %d\n", m.Expansion, m.Dilation)
	// Output: expansion 1 dilation 3
}

// Theorem 6: a mesh unit route needs at most 3 star unit routes and
// never blocks.
func ExampleStarMachine_meshUnitRoute() {
	sm := starmesh.NewStarMachine(5)
	sm.AddReg("A")
	sm.AddReg("B")
	sm.Set("A", func(pe int) int64 { return int64(pe) })
	routes, conflicts := sm.MeshUnitRoute("A", "B", 2, +1)
	fmt.Printf("routes %d conflicts %d\n", routes, conflicts)
	// Output: routes 3 conflicts 0
}

// Exact distances come from the cycle formula, not search.
func ExampleStarDistance() {
	a, _ := starmesh.NewPerm([]int{0, 1, 2, 3}) // identity (3 2 1 0)
	b, _ := starmesh.NewPerm([]int{1, 0, 2, 3}) // symbols 0,1 swapped
	fmt.Println(starmesh.StarDistance(a, b))
	// Output: 3
}
